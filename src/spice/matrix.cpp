#include "spice/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace samurai::spice {

bool lu_factor(DenseMatrix& a, std::vector<std::size_t>& pivots,
               double scale_hint) {
  const std::size_t n = a.size();
  pivots.resize(n);
  if (n == 0) return true;

  // Scale-relative singularity threshold from the input row norms. An
  // absolute floor still rejects denormal pivots that would overflow the
  // reciprocal.
  double* data = a.data();
  double scale = scale_hint;
  if (scale < 0.0) {
    scale = 0.0;
    for (std::size_t k = 0; k < n * n; ++k) {
      scale = std::max(scale, std::abs(data[k]));
    }
  }
  if (scale == 0.0) return false;  // zero matrix
  const double threshold =
      std::max(scale * static_cast<double>(n) *
                   std::numeric_limits<double>::epsilon(),
               std::numeric_limits<double>::min());

  // Pointer-walked elimination: each at(i, j) costs a multiply the
  // optimizer cannot always hoist across the pivot swap, and at n ~ 13
  // (one SRAM cell) the index arithmetic is a measurable slice of the
  // factorization. Row pointers keep the flop sequence bit-identical.
  for (std::size_t k = 0; k < n; ++k) {
    double* row_k = data + k * n;
    // Partial pivot.
    std::size_t pivot = k;
    double best = std::abs(row_k[k]);
    {
      const double* col = row_k + n + k;
      for (std::size_t i = k + 1; i < n; ++i, col += n) {
        const double mag = std::abs(*col);
        if (mag > best) {
          best = mag;
          pivot = i;
        }
      }
    }
    if (best < threshold) return false;
    pivots[k] = pivot;
    if (pivot != k) {
      double* row_p = data + pivot * n;
      for (std::size_t j = 0; j < n; ++j) std::swap(row_k[j], row_p[j]);
    }
    const double inv_pivot = 1.0 / row_k[k];
    double* row_i = row_k + n;
    for (std::size_t i = k + 1; i < n; ++i, row_i += n) {
      const double factor = row_i[k] * inv_pivot;
      if (factor == 0.0) continue;
      row_i[k] = factor;
      for (std::size_t j = k + 1; j < n; ++j) row_i[j] -= factor * row_k[j];
    }
    // Store the reciprocal pivot: back-substitution then multiplies instead
    // of dividing, which matters because the bypass re-solves against one
    // factorization many times.
    row_k[k] = inv_pivot;
  }
  return true;
}

bool lu_solve(DenseMatrix& a, std::span<double> b) {
  const std::size_t n = a.size();
  if (b.size() != n) throw std::invalid_argument("lu_solve: size mismatch");
  std::vector<std::size_t> pivots;
  if (!lu_factor(a, pivots)) return false;
  lu_solve_factored(a, pivots, b);
  return true;
}

// ------------------------------------------------------------ SparseMatrix

bool SparseMatrix::build_pattern(std::size_t n,
                                 std::span<const std::pair<int, int>> coords) {
  // Key = row << 32 | col: sorting the keys sorts row-major, and the full
  // diagonal is seeded first so every row has a pivot slot.
  keys_.clear();
  keys_.reserve(coords.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    keys_.push_back((static_cast<std::uint64_t>(i) << 32) | i);
  }
  for (const auto& [row, col] : coords) {
    if (row < 0 || col < 0) continue;  // ground
    if (static_cast<std::size_t>(row) >= n ||
        static_cast<std::size_t>(col) >= n) {
      throw std::out_of_range("SparseMatrix: stamp outside the system");
    }
    keys_.push_back((static_cast<std::uint64_t>(row) << 32) |
                    static_cast<std::uint32_t>(col));
  }
  std::sort(keys_.begin(), keys_.end());
  keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());

  scratch_row_ptr_.assign(n + 1, 0);
  scratch_cols_.clear();
  scratch_cols_.reserve(keys_.size());
  for (const std::uint64_t key : keys_) {
    const auto row = static_cast<std::size_t>(key >> 32);
    ++scratch_row_ptr_[row + 1];
    scratch_cols_.push_back(static_cast<int>(key & 0xFFFFFFFFu));
  }
  for (std::size_t i = 0; i < n; ++i) {
    scratch_row_ptr_[i + 1] += scratch_row_ptr_[i];
  }

  const bool changed = n != n_ || scratch_row_ptr_ != row_ptr_ ||
                       scratch_cols_ != cols_;
  if (changed) {
    n_ = n;
    row_ptr_.swap(scratch_row_ptr_);
    cols_.swap(scratch_cols_);
    values_.assign(cols_.size(), 0.0);
  } else {
    set_zero();
  }
  return changed;
}

void SparseMatrix::copy_pattern_from(const SparseMatrix& other) {
  n_ = other.n_;
  row_ptr_.assign(other.row_ptr_.begin(), other.row_ptr_.end());
  cols_.assign(other.cols_.begin(), other.cols_.end());
  values_.assign(cols_.size(), 0.0);
}

double* SparseMatrix::slot(int row, int col) {
  if (row < 0 || col < 0 || static_cast<std::size_t>(row) >= n_) {
    return nullptr;
  }
  const auto begin = cols_.begin() + row_ptr_[static_cast<std::size_t>(row)];
  const auto end = cols_.begin() + row_ptr_[static_cast<std::size_t>(row) + 1];
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return nullptr;
  return values_.data() + (it - cols_.begin());
}

double SparseMatrix::value_max_abs() const {
  double scale = 0.0;
  for (const double v : values_) scale = std::max(scale, std::abs(v));
  return scale;
}

void SparseMatrix::to_dense(DenseMatrix& out) const {
  out.resize(n_);
  out.set_zero();
  for (std::size_t i = 0; i < n_; ++i) {
    for (int idx = row_ptr_[i]; idx < row_ptr_[i + 1]; ++idx) {
      out.at(i, static_cast<std::size_t>(cols_[static_cast<std::size_t>(idx)])) =
          values_[static_cast<std::size_t>(idx)];
    }
  }
}

// ---------------------------------------------------------------- SparseLu

namespace {

/// Relative pivot tolerance for the discovery factorization: an entry
/// qualifies as a pivot when it is at least this fraction of its active
/// column's largest entry (threshold partial pivoting, Spice3-style).
/// Among qualifying entries the smallest Markowitz cost wins, so fill
/// stays low without ever eliminating against a relatively tiny pivot —
/// crucial for MNA branch rows, whose gmin-scale diagonals sit next to
/// O(1) incidence entries. When nothing qualifies, the largest entry above
/// the singularity threshold is taken instead (progress over fill
/// optimality).
constexpr double kPivotRelTol = 1e-2;

double singularity_threshold(double scale, std::size_t n) {
  return std::max(scale * static_cast<double>(n) *
                      std::numeric_limits<double>::epsilon(),
                  std::numeric_limits<double>::min());
}

}  // namespace

double SparseLu::resolve_scale(const SparseMatrix& a, double scale_hint) {
  return scale_hint >= 0.0 ? scale_hint : a.value_max_abs();
}

bool SparseLu::pattern_matches(const SparseMatrix& a) const {
  return analyzed_ && a.size() == n_ && a.row_ptr() == a_row_ptr_ &&
         a.cols() == a_cols_;
}

bool SparseLu::factor(const SparseMatrix& a, double scale_hint,
                      bool* was_analysis) {
  if (was_analysis) *was_analysis = false;
  const std::size_t n = a.size();
  if (n == 0) {
    analyzed_ = true;
    n_ = 0;
    a_row_ptr_.assign(1, 0);
    a_cols_.clear();
    lu_row_ptr_.assign(1, 0);
    lu_cols_.clear();
    lu_vals_.clear();
    return true;
  }
  const double scale = resolve_scale(a, scale_hint);
  if (scale == 0.0) return false;  // zero matrix
  const double threshold = singularity_threshold(scale, n);
  if (pattern_matches(a)) {
    if (refactor(a, threshold)) return true;
    // Static pivots degraded numerically: re-analyse with fresh pivoting.
  }
  if (was_analysis) *was_analysis = true;
  analyzed_ = analyze(a, threshold);
  return analyzed_;
}

bool SparseLu::analyze(const SparseMatrix& a, double threshold) {
  const std::size_t n = a.size();
  n_ = n;
  // Dense working copy with structure tracked separately from values:
  // a numerically cancelled entry stays in the pattern, so the recorded
  // fill is a superset of every future refactorization's fill.
  dense_.assign(n * n, 0.0);
  struct_.assign(n * n, 0);
  row_active_.assign(n, 1);
  col_active_.assign(n, 1);
  row_cnt_.assign(n, 0);
  col_cnt_.assign(n, 0);
  const auto& arp = a.row_ptr();
  const auto& acols = a.cols();
  const auto& avals = a.values();
  for (std::size_t i = 0; i < n; ++i) {
    for (int idx = arp[i]; idx < arp[i + 1]; ++idx) {
      const auto j = static_cast<std::size_t>(acols[static_cast<std::size_t>(idx)]);
      dense_[i * n + j] = avals[static_cast<std::size_t>(idx)];
      if (!struct_[i * n + j]) {
        struct_[i * n + j] = 1;
        ++row_cnt_[i];
        ++col_cnt_[j];
      }
    }
  }

  row_perm_.assign(n, 0);
  row_perm_inv_.assign(n, 0);
  col_perm_.assign(n, 0);
  col_perm_inv_.assign(n, 0);
  // col_max doubles as scratch: candidates_ is reserved for the harvest.
  std::vector<double>& col_max = pb_;
  col_max.assign(n, 0.0);
  for (std::size_t step = 0; step < n; ++step) {
    // Threshold Markowitz: among active entries within kPivotRelTol of
    // their column's largest magnitude, pick the smallest Markowitz cost
    // (r-1)(c-1); ties go to the larger magnitude, then the lower index —
    // a deterministic pivot order.
    for (std::size_t c = 0; c < n; ++c) {
      if (!col_active_[c]) continue;
      double m = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (row_active_[i] && struct_[i * n + c]) {
          m = std::max(m, std::abs(dense_[i * n + c]));
        }
      }
      col_max[c] = m;
    }
    std::size_t pr = n, pc = n;
    std::uint64_t best_cost = 0;
    double best_mag = -1.0;
    // Fallback: largest entry above the singularity threshold, used when
    // nothing passes the relative test.
    std::size_t fr = n, fc = n;
    double fallback_mag = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!row_active_[i]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (!col_active_[j] || !struct_[i * n + j]) continue;
        const double mag = std::abs(dense_[i * n + j]);
        if (mag < threshold) continue;
        if (mag > fallback_mag) {
          fallback_mag = mag;
          fr = i;
          fc = j;
        }
        if (mag < kPivotRelTol * col_max[j]) continue;
        const std::uint64_t cost =
            static_cast<std::uint64_t>(row_cnt_[i] - 1) *
            static_cast<std::uint64_t>(col_cnt_[j] - 1);
        if (pr == n || cost < best_cost ||
            (cost == best_cost && mag > best_mag)) {
          best_cost = cost;
          best_mag = mag;
          pr = i;
          pc = j;
        }
      }
    }
    if (pr == n) {
      pr = fr;
      pc = fc;
    }
    if (pr == n) return false;  // no usable pivot: singular

    row_perm_[step] = pr;
    row_perm_inv_[pr] = step;
    col_perm_[step] = pc;
    col_perm_inv_[pc] = step;
    row_active_[pr] = 0;
    col_active_[pc] = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (col_active_[j] && struct_[pr * n + j]) --col_cnt_[j];
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (row_active_[i] && struct_[i * n + pc]) --row_cnt_[i];
    }
    const double inv = 1.0 / dense_[pr * n + pc];
    for (std::size_t i = 0; i < n; ++i) {
      if (!row_active_[i] || !struct_[i * n + pc]) continue;
      const double l = dense_[i * n + pc] * inv;
      dense_[i * n + pc] = l;  // multiplier: the L entry of row i, step col
      for (std::size_t j = 0; j < n; ++j) {
        if (!col_active_[j] || !struct_[pr * n + j]) continue;
        if (!struct_[i * n + j]) {
          struct_[i * n + j] = 1;  // fill-in
          ++row_cnt_[i];
          ++col_cnt_[j];
        }
        dense_[i * n + j] -= l * dense_[pr * n + j];
      }
    }
  }

  // Harvest the permuted L+U pattern and this factorization's values.
  // Row k of the factors is original row row_perm_[k]; its structural
  // entries map to permuted columns col_perm_inv_[c] and are emitted in
  // ascending permuted-column order.
  lu_row_ptr_.assign(n + 1, 0);
  lu_diag_.assign(n, 0);
  recip_diag_.assign(n, 0.0);
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < n * n; ++i) nnz += struct_[i];
  lu_cols_.clear();
  lu_cols_.reserve(nnz);
  lu_vals_.clear();
  lu_vals_.reserve(nnz);
  candidates_.clear();  // reuse as (permuted col, dense index) sorter
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t r = row_perm_[k];
    candidates_.clear();
    for (std::size_t c = 0; c < n; ++c) {
      if (struct_[r * n + c]) {
        candidates_.emplace_back(col_perm_inv_[c], r * n + c);
      }
    }
    std::sort(candidates_.begin(), candidates_.end());
    for (const auto& [kc, di] : candidates_) {
      if (kc == k) lu_diag_[k] = static_cast<int>(lu_cols_.size());
      lu_cols_.push_back(static_cast<int>(kc));
      lu_vals_.push_back(dense_[di]);
    }
    lu_row_ptr_[k + 1] = static_cast<int>(lu_cols_.size());
    const double pivot = dense_[r * n + col_perm_[k]];
    if (std::abs(pivot) < threshold) return false;
    recip_diag_[k] = 1.0 / pivot;
  }

  // Scatter map for refactorizations, and the pattern identity key.
  a_row_ptr_.assign(arp.begin(), arp.end());
  a_cols_.assign(acols.begin(), acols.end());
  a_to_lu_.assign(acols.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = row_perm_inv_[i];
    for (int idx = arp[i]; idx < arp[i + 1]; ++idx) {
      const auto kc = static_cast<int>(col_perm_inv_[static_cast<std::size_t>(
          acols[static_cast<std::size_t>(idx)])]);
      const auto begin = lu_cols_.begin() + lu_row_ptr_[k];
      const auto end = lu_cols_.begin() + lu_row_ptr_[k + 1];
      const auto it = std::lower_bound(begin, end, kc);
      a_to_lu_[static_cast<std::size_t>(idx)] =
          static_cast<int>(it - lu_cols_.begin());
    }
  }
  pos_.assign(n, -1);
  pb_.assign(n, 0.0);
  return true;
}

bool SparseLu::refactor(const SparseMatrix& a, double threshold) {
  const std::size_t n = n_;
  std::fill(lu_vals_.begin(), lu_vals_.end(), 0.0);
  const auto& avals = a.values();
  for (std::size_t e = 0; e < avals.size(); ++e) {
    lu_vals_[static_cast<std::size_t>(a_to_lu_[e])] += avals[e];
  }
  // Up-looking sweep over the static pattern, rows in permuted order. For
  // row k, each L entry (column j < k, ascending) becomes the multiplier
  // l = v / U(j,j) and subtracts l × (U row j) from the row; the pattern
  // is closed under elimination by construction, so every target position
  // exists (the pos_ guard only skips positions a cancellation-proof
  // superset makes structurally absent — never silently wrong values).
  for (std::size_t k = 0; k < n; ++k) {
    const int row_begin = lu_row_ptr_[k];
    const int row_end = lu_row_ptr_[k + 1];
    for (int idx = row_begin; idx < row_end; ++idx) {
      pos_[static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(idx)])] =
          idx;
    }
    const int diag = lu_diag_[k];
    for (int idx = row_begin; idx < diag; ++idx) {
      const auto j =
          static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(idx)]);
      const double l =
          lu_vals_[static_cast<std::size_t>(idx)] * recip_diag_[j];
      lu_vals_[static_cast<std::size_t>(idx)] = l;
      if (l == 0.0) continue;
      for (int u = lu_diag_[j] + 1; u < lu_row_ptr_[j + 1]; ++u) {
        const int p =
            pos_[static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(u)])];
        if (p >= 0) {
          lu_vals_[static_cast<std::size_t>(p)] -=
              l * lu_vals_[static_cast<std::size_t>(u)];
        }
      }
    }
    for (int idx = row_begin; idx < row_end; ++idx) {
      pos_[static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(idx)])] =
          -1;
    }
    const double pivot = lu_vals_[static_cast<std::size_t>(diag)];
    if (std::abs(pivot) < threshold) {
      // Clear the row map before bailing (pos_ must stay all -1).
      return false;
    }
    recip_diag_[k] = 1.0 / pivot;
  }
  return true;
}

void SparseLu::solve(std::span<double> b) const {
  const std::size_t n = n_;
  if (b.size() != n) {
    throw std::invalid_argument("SparseLu::solve: size mismatch");
  }
  if (!analyzed_) throw std::logic_error("SparseLu::solve: not factored");
  // Solving (P A Q) y = P b with x = Q y: permute the rhs by the row
  // permutation, sweep L (unit lower) then U (reciprocal diagonal), and
  // scatter back through the column permutation.
  for (std::size_t k = 0; k < n; ++k) pb_[k] = b[row_perm_[k]];
  for (std::size_t k = 0; k < n; ++k) {
    double sum = pb_[k];
    for (int idx = lu_row_ptr_[k]; idx < lu_diag_[k]; ++idx) {
      sum -= lu_vals_[static_cast<std::size_t>(idx)] *
             pb_[static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(idx)])];
    }
    pb_[k] = sum;
  }
  for (std::size_t k = n; k-- > 0;) {
    double sum = pb_[k];
    for (int idx = lu_diag_[k] + 1; idx < lu_row_ptr_[k + 1]; ++idx) {
      sum -= lu_vals_[static_cast<std::size_t>(idx)] *
             pb_[static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(idx)])];
    }
    pb_[k] = sum * recip_diag_[k];
  }
  for (std::size_t k = 0; k < n; ++k) b[col_perm_[k]] = pb_[k];
}

bool sparse_lu_solve(const SparseMatrix& a, std::span<double> b,
                     double scale_hint) {
  if (b.size() != a.size()) {
    throw std::invalid_argument("sparse_lu_solve: size mismatch");
  }
  SparseLu lu;
  if (!lu.factor(a, scale_hint)) return false;
  lu.solve(b);
  return true;
}

}  // namespace samurai::spice
