#include "spice/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace samurai::spice {

bool lu_factor(DenseMatrix& a, std::vector<std::size_t>& pivots,
               double scale_hint) {
  const std::size_t n = a.size();
  pivots.resize(n);
  if (n == 0) return true;

  // Scale-relative singularity threshold from the input row norms. An
  // absolute floor still rejects denormal pivots that would overflow the
  // reciprocal.
  double* data = a.data();
  double scale = scale_hint;
  if (scale < 0.0) {
    scale = 0.0;
    for (std::size_t k = 0; k < n * n; ++k) {
      scale = std::max(scale, std::abs(data[k]));
    }
  }
  if (scale == 0.0) return false;  // zero matrix
  const double threshold =
      std::max(scale * static_cast<double>(n) *
                   std::numeric_limits<double>::epsilon(),
               std::numeric_limits<double>::min());

  // Pointer-walked elimination: each at(i, j) costs a multiply the
  // optimizer cannot always hoist across the pivot swap, and at n ~ 13
  // (one SRAM cell) the index arithmetic is a measurable slice of the
  // factorization. Row pointers keep the flop sequence bit-identical.
  for (std::size_t k = 0; k < n; ++k) {
    double* row_k = data + k * n;
    // Partial pivot.
    std::size_t pivot = k;
    double best = std::abs(row_k[k]);
    {
      const double* col = row_k + n + k;
      for (std::size_t i = k + 1; i < n; ++i, col += n) {
        const double mag = std::abs(*col);
        if (mag > best) {
          best = mag;
          pivot = i;
        }
      }
    }
    if (best < threshold) return false;
    pivots[k] = pivot;
    if (pivot != k) {
      double* row_p = data + pivot * n;
      for (std::size_t j = 0; j < n; ++j) std::swap(row_k[j], row_p[j]);
    }
    const double inv_pivot = 1.0 / row_k[k];
    double* row_i = row_k + n;
    for (std::size_t i = k + 1; i < n; ++i, row_i += n) {
      const double factor = row_i[k] * inv_pivot;
      if (factor == 0.0) continue;
      row_i[k] = factor;
      for (std::size_t j = k + 1; j < n; ++j) row_i[j] -= factor * row_k[j];
    }
    // Store the reciprocal pivot: back-substitution then multiplies instead
    // of dividing, which matters because the bypass re-solves against one
    // factorization many times.
    row_k[k] = inv_pivot;
  }
  return true;
}

bool lu_solve(DenseMatrix& a, std::span<double> b) {
  const std::size_t n = a.size();
  if (b.size() != n) throw std::invalid_argument("lu_solve: size mismatch");
  std::vector<std::size_t> pivots;
  if (!lu_factor(a, pivots)) return false;
  lu_solve_factored(a, pivots, b);
  return true;
}

// ------------------------------------------------------------ SparseMatrix

bool SparseMatrix::build_pattern(std::size_t n,
                                 std::span<const std::pair<int, int>> coords) {
  // Key = row << 32 | col: sorting the keys sorts row-major, and the full
  // diagonal is seeded first so every row has a pivot slot.
  keys_.clear();
  keys_.reserve(coords.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    keys_.push_back((static_cast<std::uint64_t>(i) << 32) | i);
  }
  for (const auto& [row, col] : coords) {
    if (row < 0 || col < 0) continue;  // ground
    if (static_cast<std::size_t>(row) >= n ||
        static_cast<std::size_t>(col) >= n) {
      throw std::out_of_range("SparseMatrix: stamp outside the system");
    }
    keys_.push_back((static_cast<std::uint64_t>(row) << 32) |
                    static_cast<std::uint32_t>(col));
  }
  std::sort(keys_.begin(), keys_.end());
  keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());

  scratch_row_ptr_.assign(n + 1, 0);
  scratch_cols_.clear();
  scratch_cols_.reserve(keys_.size());
  for (const std::uint64_t key : keys_) {
    const auto row = static_cast<std::size_t>(key >> 32);
    ++scratch_row_ptr_[row + 1];
    scratch_cols_.push_back(static_cast<int>(key & 0xFFFFFFFFu));
  }
  for (std::size_t i = 0; i < n; ++i) {
    scratch_row_ptr_[i + 1] += scratch_row_ptr_[i];
  }

  const bool changed = n != n_ || scratch_row_ptr_ != row_ptr_ ||
                       scratch_cols_ != cols_;
  if (changed) {
    n_ = n;
    row_ptr_.swap(scratch_row_ptr_);
    cols_.swap(scratch_cols_);
    values_.assign(cols_.size(), 0.0);
  } else {
    set_zero();
  }
  return changed;
}

void SparseMatrix::copy_pattern_from(const SparseMatrix& other) {
  n_ = other.n_;
  row_ptr_.assign(other.row_ptr_.begin(), other.row_ptr_.end());
  cols_.assign(other.cols_.begin(), other.cols_.end());
  values_.assign(cols_.size(), 0.0);
}

double* SparseMatrix::slot(int row, int col) {
  if (row < 0 || col < 0 || static_cast<std::size_t>(row) >= n_) {
    return nullptr;
  }
  const auto begin = cols_.begin() + row_ptr_[static_cast<std::size_t>(row)];
  const auto end = cols_.begin() + row_ptr_[static_cast<std::size_t>(row) + 1];
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return nullptr;
  return values_.data() + (it - cols_.begin());
}

double SparseMatrix::value_max_abs() const {
  double scale = 0.0;
  for (const double v : values_) scale = std::max(scale, std::abs(v));
  return scale;
}

void SparseMatrix::to_dense(DenseMatrix& out) const {
  out.resize(n_);
  out.set_zero();
  for (std::size_t i = 0; i < n_; ++i) {
    for (int idx = row_ptr_[i]; idx < row_ptr_[i + 1]; ++idx) {
      out.at(i, static_cast<std::size_t>(cols_[static_cast<std::size_t>(idx)])) =
          values_[static_cast<std::size_t>(idx)];
    }
  }
}

// ---------------------------------------------------------------- SparseLu

namespace {

/// Relative pivot tolerance for the discovery factorization: an entry
/// qualifies as a pivot when it is at least this fraction of its active
/// column's largest entry (threshold partial pivoting, Spice3-style).
/// Among qualifying entries the smallest Markowitz cost wins, so fill
/// stays low without ever eliminating against a relatively tiny pivot —
/// crucial for MNA branch rows, whose gmin-scale diagonals sit next to
/// O(1) incidence entries. When nothing qualifies, the largest entry above
/// the singularity threshold is taken instead (progress over fill
/// optimality).
constexpr double kPivotRelTol = 1e-2;

double singularity_threshold(double scale, std::size_t n) {
  return std::max(scale * static_cast<double>(n) *
                      std::numeric_limits<double>::epsilon(),
                  std::numeric_limits<double>::min());
}

/// When a grouped (Schur-fold) analysis fails — a group interior that is
/// not invertible on its own — fall back to the classic whole-matrix
/// discovery, but only below this size: the classic path allocates an
/// O(n²) dense working copy, which at array scale (tens of thousands of
/// unknowns) is gigabytes. Above the limit the failure is reported to the
/// caller instead.
constexpr std::size_t kGroupedFallbackLimit = 8192;

}  // namespace

double SparseLu::resolve_scale(const SparseMatrix& a, double scale_hint) {
  return scale_hint >= 0.0 ? scale_hint : a.value_max_abs();
}

bool SparseLu::pattern_matches(const SparseMatrix& a) const {
  return analyzed_ && a.size() == n_ && a.row_ptr() == a_row_ptr_ &&
         a.cols() == a_cols_;
}

void SparseLu::set_ordering_groups(std::vector<std::vector<int>> groups) {
  if (groups == groups_) return;  // Monte-Carlo re-attach: keep the analysis
  groups_ = std::move(groups);
  invalidate();
}

bool SparseLu::factor(const SparseMatrix& a, double scale_hint,
                      bool* was_analysis, std::size_t first_changed_row) {
  if (was_analysis) *was_analysis = false;
  const std::size_t n = a.size();
  if (n == 0) {
    analyzed_ = true;
    numeric_valid_ = true;
    n_ = 0;
    a_row_ptr_.assign(1, 0);
    a_cols_.clear();
    lu_row_ptr_.assign(1, 0);
    lu_cols_.clear();
    lu_vals_.clear();
    return true;
  }
  const double scale = resolve_scale(a, scale_hint);
  if (scale == 0.0) return false;  // zero matrix
  const double threshold = singularity_threshold(scale, n);
  if (pattern_matches(a)) {
    // A partial refactorization is only meaningful against the intact
    // numeric state of the previous successful factor.
    const std::size_t floor =
        numeric_valid_ ? std::min(first_changed_row, n) : 0;
    if (refactor(a, threshold, floor)) return true;
    // Static pivots degraded numerically: re-analyse with fresh pivoting.
    // (A partial sweep fails iff the full sweep fails — the retained rows
    // are bit-identical by the caller's contract — so go straight to the
    // analysis.)
  }
  if (was_analysis) *was_analysis = true;
  analyzed_ = analyze(a, threshold);
  return analyzed_;
}

bool SparseLu::analyze(const SparseMatrix& a, double threshold) {
  numeric_valid_ = false;
  n_ = a.size();
  bool ok;
  if (!groups_.empty()) {
    ok = analyze_grouped(a, threshold);
    if (!ok && n_ <= kGroupedFallbackLimit) ok = analyze_classic(a, threshold);
  } else {
    ok = analyze_classic(a, threshold);
  }
  if (!ok) return false;
  build_scatter_map(a);
  numeric_valid_ = true;
  return true;
}

bool SparseLu::markowitz_eliminate(std::vector<double>& dense,
                                   std::vector<unsigned char>& strct,
                                   std::size_t n, double threshold,
                                   std::vector<std::size_t>& row_perm,
                                   std::vector<std::size_t>& row_perm_inv,
                                   std::vector<std::size_t>& col_perm,
                                   std::vector<std::size_t>& col_perm_inv) {
  std::vector<unsigned char> row_active(n, 1);
  std::vector<unsigned char> col_active(n, 1);
  std::vector<int> row_cnt(n, 0);
  std::vector<int> col_cnt(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (strct[i * n + j]) {
        ++row_cnt[i];
        ++col_cnt[j];
      }
    }
  }
  row_perm.assign(n, 0);
  row_perm_inv.assign(n, 0);
  col_perm.assign(n, 0);
  col_perm_inv.assign(n, 0);
  std::vector<double> col_max(n, 0.0);
  for (std::size_t step = 0; step < n; ++step) {
    // Threshold Markowitz: among active entries within kPivotRelTol of
    // their column's largest magnitude, pick the smallest Markowitz cost
    // (r-1)(c-1); ties go to the larger magnitude, then the lower index —
    // a deterministic pivot order.
    for (std::size_t c = 0; c < n; ++c) {
      if (!col_active[c]) continue;
      double m = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (row_active[i] && strct[i * n + c]) {
          m = std::max(m, std::abs(dense[i * n + c]));
        }
      }
      col_max[c] = m;
    }
    std::size_t pr = n, pc = n;
    std::uint64_t best_cost = 0;
    double best_mag = -1.0;
    // Fallback: largest entry above the singularity threshold, used when
    // nothing passes the relative test.
    std::size_t fr = n, fc = n;
    double fallback_mag = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!row_active[i]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (!col_active[j] || !strct[i * n + j]) continue;
        const double mag = std::abs(dense[i * n + j]);
        if (mag < threshold) continue;
        if (mag > fallback_mag) {
          fallback_mag = mag;
          fr = i;
          fc = j;
        }
        if (mag < kPivotRelTol * col_max[j]) continue;
        const std::uint64_t cost =
            static_cast<std::uint64_t>(row_cnt[i] - 1) *
            static_cast<std::uint64_t>(col_cnt[j] - 1);
        if (pr == n || cost < best_cost ||
            (cost == best_cost && mag > best_mag)) {
          best_cost = cost;
          best_mag = mag;
          pr = i;
          pc = j;
        }
      }
    }
    if (pr == n) {
      pr = fr;
      pc = fc;
    }
    if (pr == n) return false;  // no usable pivot: singular

    row_perm[step] = pr;
    row_perm_inv[pr] = step;
    col_perm[step] = pc;
    col_perm_inv[pc] = step;
    row_active[pr] = 0;
    col_active[pc] = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (col_active[j] && strct[pr * n + j]) --col_cnt[j];
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (row_active[i] && strct[i * n + pc]) --row_cnt[i];
    }
    const double inv = 1.0 / dense[pr * n + pc];
    for (std::size_t i = 0; i < n; ++i) {
      if (!row_active[i] || !strct[i * n + pc]) continue;
      const double l = dense[i * n + pc] * inv;
      dense[i * n + pc] = l;  // multiplier: the L entry of row i, step col
      for (std::size_t j = 0; j < n; ++j) {
        if (!col_active[j] || !strct[pr * n + j]) continue;
        if (!strct[i * n + j]) {
          strct[i * n + j] = 1;  // fill-in
          ++row_cnt[i];
          ++col_cnt[j];
        }
        dense[i * n + j] -= l * dense[pr * n + j];
      }
    }
  }
  return true;
}

bool SparseLu::analyze_classic(const SparseMatrix& a, double threshold) {
  const std::size_t n = a.size();
  // Dense working copy with structure tracked separately from values:
  // a numerically cancelled entry stays in the pattern, so the recorded
  // fill is a superset of every future refactorization's fill.
  dense_.assign(n * n, 0.0);
  struct_.assign(n * n, 0);
  const auto& arp = a.row_ptr();
  const auto& acols = a.cols();
  const auto& avals = a.values();
  for (std::size_t i = 0; i < n; ++i) {
    for (int idx = arp[i]; idx < arp[i + 1]; ++idx) {
      const auto j = static_cast<std::size_t>(acols[static_cast<std::size_t>(idx)]);
      dense_[i * n + j] = avals[static_cast<std::size_t>(idx)];
      struct_[i * n + j] = 1;
    }
  }
  if (!markowitz_eliminate(dense_, struct_, n, threshold, row_perm_,
                           row_perm_inv_, col_perm_, col_perm_inv_)) {
    return false;
  }

  // Harvest the permuted L+U pattern and this factorization's values.
  // Row k of the factors is original row row_perm_[k]; its structural
  // entries map to permuted columns col_perm_inv_[c] and are emitted in
  // ascending permuted-column order.
  lu_row_ptr_.assign(n + 1, 0);
  lu_diag_.assign(n, 0);
  recip_diag_.assign(n, 0.0);
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < n * n; ++i) nnz += struct_[i];
  lu_cols_.clear();
  lu_cols_.reserve(nnz);
  lu_vals_.clear();
  lu_vals_.reserve(nnz);
  candidates_.clear();  // reuse as (permuted col, dense index) sorter
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t r = row_perm_[k];
    candidates_.clear();
    for (std::size_t c = 0; c < n; ++c) {
      if (struct_[r * n + c]) {
        candidates_.emplace_back(col_perm_inv_[c], r * n + c);
      }
    }
    std::sort(candidates_.begin(), candidates_.end());
    for (const auto& [kc, di] : candidates_) {
      if (kc == k) lu_diag_[k] = static_cast<int>(lu_cols_.size());
      lu_cols_.push_back(static_cast<int>(kc));
      lu_vals_.push_back(dense_[di]);
    }
    lu_row_ptr_[k + 1] = static_cast<int>(lu_cols_.size());
    const double pivot = dense_[r * n + col_perm_[k]];
    if (std::abs(pivot) < threshold) return false;
    recip_diag_[k] = 1.0 / pivot;
  }
  return true;
}

void SparseLu::build_scatter_map(const SparseMatrix& a) {
  // Scatter map for refactorizations, and the pattern identity key.
  const std::size_t n = n_;
  const auto& arp = a.row_ptr();
  const auto& acols = a.cols();
  a_row_ptr_.assign(arp.begin(), arp.end());
  a_cols_.assign(acols.begin(), acols.end());
  a_to_lu_.assign(acols.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = row_perm_inv_[i];
    for (int idx = arp[i]; idx < arp[i + 1]; ++idx) {
      const auto kc = static_cast<int>(col_perm_inv_[static_cast<std::size_t>(
          acols[static_cast<std::size_t>(idx)])]);
      const auto begin = lu_cols_.begin() + lu_row_ptr_[k];
      const auto end = lu_cols_.begin() + lu_row_ptr_[k + 1];
      const auto it = std::lower_bound(begin, end, kc);
      a_to_lu_[static_cast<std::size_t>(idx)] =
          static_cast<int>(it - lu_cols_.begin());
    }
  }
  pos_.assign(n, -1);
  pb_.assign(n, 0.0);
}

bool SparseLu::analyze_grouped(const SparseMatrix& a, double threshold) {
  const std::size_t n = a.size();
  const auto& arp = a.row_ptr();
  const auto& acols = a.cols();
  const auto& avals = a.values();

  // Unknown -> group map. Direct coupling between unknowns of two
  // *different* groups violates the fold's block structure; both ends of
  // such an edge are demoted to the boundary (one pass suffices: every
  // cross-group edge has both endpoints demoted, so the surviving
  // interiors couple only within their group or to the boundary).
  std::vector<int> group_of(n, -1);
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    for (const int u : groups_[g]) {
      if (u < 0 || static_cast<std::size_t>(u) >= n) {
        throw std::out_of_range(
            "SparseLu: ordering-group unknown outside the system");
      }
      if (group_of[static_cast<std::size_t>(u)] != -1) {
        throw std::invalid_argument("SparseLu: overlapping ordering groups");
      }
      group_of[static_cast<std::size_t>(u)] = static_cast<int>(g);
    }
  }
  {
    std::vector<unsigned char> demote(n, 0);
    bool any = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (group_of[i] < 0) continue;
      for (int idx = arp[i]; idx < arp[i + 1]; ++idx) {
        const auto j =
            static_cast<std::size_t>(acols[static_cast<std::size_t>(idx)]);
        if (group_of[j] >= 0 && group_of[j] != group_of[i]) {
          demote[i] = 1;
          demote[j] = 1;
          any = true;
        }
      }
    }
    if (any) {
      for (std::size_t i = 0; i < n; ++i) {
        if (demote[i]) group_of[i] = -1;
      }
    }
  }

  // Interior member lists (post-demotion) and boundary numbering.
  struct LocalFactor {
    std::vector<int> ids;   ///< interior unknowns, local indices 0..ni-1
    std::vector<int> bids;  ///< coupled boundary unknowns, local ni..m-1
    std::vector<double> dense;           ///< m×m local working matrix
    std::vector<unsigned char> strct;    ///< m×m structure incl. fill
    std::vector<std::size_t> lrow_perm;  ///< step -> local interior row
    std::vector<std::size_t> lcol_perm;  ///< step -> local interior col
    std::vector<std::size_t> lrow_pos;   ///< local interior row -> step
    std::vector<std::size_t> lcol_pos;   ///< local interior col -> step
  };
  std::vector<LocalFactor> locals(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    for (const int u : groups_[g]) {
      if (group_of[static_cast<std::size_t>(u)] == static_cast<int>(g)) {
        locals[g].ids.push_back(u);
      }
    }
  }
  std::vector<int> bnd;
  std::vector<int> b_index(n, -1);
  for (std::size_t u = 0; u < n; ++u) {
    if (group_of[u] < 0) {
      b_index[u] = static_cast<int>(bnd.size());
      bnd.push_back(static_cast<int>(u));
    }
  }
  const std::size_t nb = bnd.size();

  // One pass over A collects each group's coupled boundary set — the
  // pattern may be structurally asymmetric (branch rows), so both
  // (interior row, boundary col) and (boundary row, interior col) count.
  for (std::size_t r = 0; r < n; ++r) {
    const int gr = group_of[r];
    for (int idx = arp[r]; idx < arp[r + 1]; ++idx) {
      const auto c =
          static_cast<std::size_t>(acols[static_cast<std::size_t>(idx)]);
      const int gc = group_of[c];
      if (gr == gc) continue;
      if (gr >= 0) locals[static_cast<std::size_t>(gr)].bids.push_back(
          static_cast<int>(c));
      if (gc >= 0) locals[static_cast<std::size_t>(gc)].bids.push_back(
          static_cast<int>(r));
    }
  }
  for (auto& lf : locals) {
    std::sort(lf.bids.begin(), lf.bids.end());
    lf.bids.erase(std::unique(lf.bids.begin(), lf.bids.end()), lf.bids.end());
  }

  // Per-group local elimination: threshold-Markowitz restricted to
  // interior×interior pivots, with the group's boundary rows and columns
  // riding along as permanently-active spectators — their updates are the
  // Schur complement, their fill the Schur pattern.
  std::vector<int> loc_of(n, -1);
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    LocalFactor& lf = locals[g];
    const std::size_t ni = lf.ids.size();
    if (ni == 0) continue;
    const std::size_t m = ni + lf.bids.size();
    for (std::size_t k = 0; k < ni; ++k) {
      loc_of[static_cast<std::size_t>(lf.ids[k])] = static_cast<int>(k);
    }
    for (std::size_t k = 0; k < lf.bids.size(); ++k) {
      loc_of[static_cast<std::size_t>(lf.bids[k])] =
          static_cast<int>(ni + k);
    }
    lf.dense.assign(m * m, 0.0);
    lf.strct.assign(m * m, 0);
    std::vector<int> lrow_cnt(m, 0), lcol_cnt(m, 0);
    for (std::size_t lr = 0; lr < m; ++lr) {
      const int r = lr < ni ? lf.ids[lr] : lf.bids[lr - ni];
      for (int idx = arp[r]; idx < arp[r + 1]; ++idx) {
        const int lc = loc_of[static_cast<std::size_t>(
            acols[static_cast<std::size_t>(idx)])];
        if (lc < 0) continue;
        // Boundary×boundary base entries belong to the global boundary
        // block, not the local factor — the local b×b positions hold the
        // pure Schur increment.
        if (lr >= ni && static_cast<std::size_t>(lc) >= ni) continue;
        lf.dense[lr * m + static_cast<std::size_t>(lc)] =
            avals[static_cast<std::size_t>(idx)];
        lf.strct[lr * m + static_cast<std::size_t>(lc)] = 1;
        ++lrow_cnt[lr];
        ++lcol_cnt[static_cast<std::size_t>(lc)];
      }
    }
    for (std::size_t k = 0; k < ni; ++k) {
      loc_of[static_cast<std::size_t>(lf.ids[k])] = -1;
    }
    for (std::size_t k = 0; k < lf.bids.size(); ++k) {
      loc_of[static_cast<std::size_t>(lf.bids[k])] = -1;
    }

    lf.lrow_perm.assign(ni, 0);
    lf.lcol_perm.assign(ni, 0);
    lf.lrow_pos.assign(ni, 0);
    lf.lcol_pos.assign(ni, 0);
    std::vector<unsigned char> lrow_act(m, 1), lcol_act(m, 1);
    for (std::size_t step = 0; step < ni; ++step) {
      std::size_t pr = m, pc = m;
      std::uint64_t best_cost = 0;
      double best_mag = -1.0;
      std::size_t fr = m, fc = m;
      double fallback_mag = -1.0;
      for (std::size_t j = 0; j < ni; ++j) {
        if (!lcol_act[j]) continue;
        // Stability is judged against the column's largest entry over
        // *all* active local rows, boundary rows included — the same
        // entries the classic whole-matrix pass would have seen.
        double cmax = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          if (lrow_act[i] && lf.strct[i * m + j]) {
            cmax = std::max(cmax, std::abs(lf.dense[i * m + j]));
          }
        }
        for (std::size_t i = 0; i < ni; ++i) {
          if (!lrow_act[i] || !lf.strct[i * m + j]) continue;
          const double mag = std::abs(lf.dense[i * m + j]);
          if (mag < threshold) continue;
          if (mag > fallback_mag) {
            fallback_mag = mag;
            fr = i;
            fc = j;
          }
          if (mag < kPivotRelTol * cmax) continue;
          const std::uint64_t cost =
              static_cast<std::uint64_t>(lrow_cnt[i] - 1) *
              static_cast<std::uint64_t>(lcol_cnt[j] - 1);
          if (pr == m || cost < best_cost ||
              (cost == best_cost && mag > best_mag)) {
            best_cost = cost;
            best_mag = mag;
            pr = i;
            pc = j;
          }
        }
      }
      if (pr == m) {
        pr = fr;
        pc = fc;
      }
      // A group interior that is not invertible against its own unknowns
      // cannot be folded; the caller falls back to the classic analysis.
      if (pr == m) return false;

      lf.lrow_perm[step] = pr;
      lf.lrow_pos[pr] = step;
      lf.lcol_perm[step] = pc;
      lf.lcol_pos[pc] = step;
      lrow_act[pr] = 0;
      lcol_act[pc] = 0;
      for (std::size_t j = 0; j < m; ++j) {
        if (lcol_act[j] && lf.strct[pr * m + j]) --lcol_cnt[j];
      }
      for (std::size_t i = 0; i < m; ++i) {
        if (lrow_act[i] && lf.strct[i * m + pc]) --lrow_cnt[i];
      }
      const double inv = 1.0 / lf.dense[pr * m + pc];
      for (std::size_t i = 0; i < m; ++i) {
        if (!lrow_act[i] || !lf.strct[i * m + pc]) continue;
        const double l = lf.dense[i * m + pc] * inv;
        lf.dense[i * m + pc] = l;
        for (std::size_t j = 0; j < m; ++j) {
          if (!lcol_act[j] || !lf.strct[pr * m + j]) continue;
          if (!lf.strct[i * m + j]) {
            lf.strct[i * m + j] = 1;
            ++lrow_cnt[i];
            ++lcol_cnt[j];
          }
          lf.dense[i * m + j] -= l * lf.dense[pr * m + j];
        }
      }
    }
  }

  // Boundary block: A's boundary×boundary entries plus every group's
  // Schur increment, eliminated with the shared Markowitz core.
  dense_.assign(nb * nb, 0.0);
  struct_.assign(nb * nb, 0);
  for (std::size_t bi = 0; bi < nb; ++bi) {
    const int r = bnd[bi];
    for (int idx = arp[r]; idx < arp[r + 1]; ++idx) {
      const auto c =
          static_cast<std::size_t>(acols[static_cast<std::size_t>(idx)]);
      if (group_of[c] < 0) {
        const auto bj = static_cast<std::size_t>(b_index[c]);
        dense_[bi * nb + bj] = avals[static_cast<std::size_t>(idx)];
        struct_[bi * nb + bj] = 1;
      }
    }
  }
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const LocalFactor& lf = locals[g];
    const std::size_t ni = lf.ids.size();
    if (ni == 0) continue;
    const std::size_t m = ni + lf.bids.size();
    for (std::size_t lbr = ni; lbr < m; ++lbr) {
      const auto bi = static_cast<std::size_t>(
          b_index[static_cast<std::size_t>(lf.bids[lbr - ni])]);
      for (std::size_t lbc = ni; lbc < m; ++lbc) {
        if (!lf.strct[lbr * m + lbc]) continue;
        const auto bj = static_cast<std::size_t>(
            b_index[static_cast<std::size_t>(lf.bids[lbc - ni])]);
        dense_[bi * nb + bj] += lf.dense[lbr * m + lbc];
        struct_[bi * nb + bj] = 1;
      }
    }
  }
  std::vector<std::size_t> brow_perm, brow_pos, bcol_perm, bcol_pos;
  if (nb > 0 &&
      !markowitz_eliminate(dense_, struct_, nb, threshold, brow_perm,
                           brow_pos, bcol_perm, bcol_pos)) {
    return false;
  }

  // Harvest one global permutation — group interiors first, in group
  // order, then the boundary — and the permuted L+U pattern, so that
  // refactor()/solve() run unchanged on the grouped ordering.
  row_perm_.assign(n, 0);
  row_perm_inv_.assign(n, 0);
  col_perm_.assign(n, 0);
  col_perm_inv_.assign(n, 0);
  std::vector<std::size_t> goff(groups_.size(), 0);
  std::size_t off = 0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const LocalFactor& lf = locals[g];
    goff[g] = off;
    for (std::size_t s = 0; s < lf.ids.size(); ++s) {
      row_perm_[off + s] =
          static_cast<std::size_t>(lf.ids[lf.lrow_perm[s]]);
      col_perm_[off + s] =
          static_cast<std::size_t>(lf.ids[lf.lcol_perm[s]]);
    }
    off += lf.ids.size();
  }
  const std::size_t n_interior = off;
  for (std::size_t t = 0; t < nb; ++t) {
    row_perm_[n_interior + t] =
        static_cast<std::size_t>(bnd[brow_perm[t]]);
    col_perm_[n_interior + t] =
        static_cast<std::size_t>(bnd[bcol_perm[t]]);
  }
  for (std::size_t k = 0; k < n; ++k) {
    row_perm_inv_[row_perm_[k]] = k;
    col_perm_inv_[col_perm_[k]] = k;
  }

  // Boundary unknown -> (group, local row) back references for the
  // boundary rows' interior-column (L) entries.
  std::vector<std::vector<std::pair<int, int>>> bnd_groups(nb);
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const LocalFactor& lf = locals[g];
    if (lf.ids.empty()) continue;
    for (std::size_t lb = 0; lb < lf.bids.size(); ++lb) {
      bnd_groups[static_cast<std::size_t>(
                     b_index[static_cast<std::size_t>(lf.bids[lb])])]
          .emplace_back(static_cast<int>(g),
                        static_cast<int>(lf.ids.size() + lb));
    }
  }

  lu_row_ptr_.assign(n + 1, 0);
  lu_diag_.assign(n, 0);
  recip_diag_.assign(n, 0.0);
  lu_cols_.clear();
  lu_vals_.clear();
  std::vector<std::pair<std::size_t, double>> row_entries;
  auto emit_row = [&](std::size_t k) -> bool {
    std::sort(row_entries.begin(), row_entries.end());
    bool have_diag = false;
    for (const auto& [kc, v] : row_entries) {
      if (kc == k) {
        lu_diag_[k] = static_cast<int>(lu_cols_.size());
        have_diag = true;
      }
      lu_cols_.push_back(static_cast<int>(kc));
      lu_vals_.push_back(v);
    }
    lu_row_ptr_[k + 1] = static_cast<int>(lu_cols_.size());
    return have_diag;
  };
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const LocalFactor& lf = locals[g];
    const std::size_t ni = lf.ids.size();
    const std::size_t m = ni + lf.bids.size();
    for (std::size_t s = 0; s < ni; ++s) {
      const std::size_t k = goff[g] + s;
      const std::size_t lr = lf.lrow_perm[s];
      row_entries.clear();
      for (std::size_t lc = 0; lc < m; ++lc) {
        if (!lf.strct[lr * m + lc]) continue;
        const std::size_t kc =
            lc < ni ? goff[g] + lf.lcol_pos[lc]
                    : n_interior +
                          bcol_pos[static_cast<std::size_t>(b_index[
                              static_cast<std::size_t>(lf.bids[lc - ni])])];
        row_entries.emplace_back(kc, lf.dense[lr * m + lc]);
      }
      if (!emit_row(k)) return false;
      const double pivot = lf.dense[lr * m + lf.lcol_perm[s]];
      if (std::abs(pivot) < threshold) return false;
      recip_diag_[k] = 1.0 / pivot;
    }
  }
  for (std::size_t t = 0; t < nb; ++t) {
    const std::size_t k = n_interior + t;
    const std::size_t br = brow_perm[t];
    row_entries.clear();
    for (const auto& [g, lr] : bnd_groups[br]) {
      const LocalFactor& lf = locals[static_cast<std::size_t>(g)];
      const std::size_t ni = lf.ids.size();
      const std::size_t m = ni + lf.bids.size();
      const auto lrs = static_cast<std::size_t>(lr);
      for (std::size_t lc = 0; lc < ni; ++lc) {
        if (!lf.strct[lrs * m + lc]) continue;
        row_entries.emplace_back(
            goff[static_cast<std::size_t>(g)] + lf.lcol_pos[lc],
            lf.dense[lrs * m + lc]);
      }
    }
    for (std::size_t bc = 0; bc < nb; ++bc) {
      if (!struct_[br * nb + bc]) continue;
      row_entries.emplace_back(n_interior + bcol_pos[bc],
                               dense_[br * nb + bc]);
    }
    if (!emit_row(k)) return false;
    const double pivot = dense_[br * nb + bcol_perm[t]];
    if (std::abs(pivot) < threshold) return false;
    recip_diag_[k] = 1.0 / pivot;
  }
  return true;
}

bool SparseLu::refactor(const SparseMatrix& a, double threshold,
                        std::size_t first_changed_row) {
  const std::size_t n = n_;
  const auto& avals = a.values();
  // `numeric_valid_` drops for the duration of the sweep: a mid-sweep
  // pivot failure leaves lu_vals_ partially overwritten, which must not
  // seed a later partial refactorization.
  numeric_valid_ = false;
  if (first_changed_row == 0) {
    std::fill(lu_vals_.begin(), lu_vals_.end(), 0.0);
    for (std::size_t e = 0; e < avals.size(); ++e) {
      lu_vals_[static_cast<std::size_t>(a_to_lu_[e])] += avals[e];
    }
  } else {
    // Partial mode: the caller promises rows below the floor map to
    // bit-identical A values, so their retained L/U rows (and reciprocal
    // pivots) are exactly what a full sweep would recompute. Re-scatter
    // and re-sweep only the tail.
    std::fill(
        lu_vals_.begin() + lu_row_ptr_[first_changed_row], lu_vals_.end(),
        0.0);
    const auto& arp = a.row_ptr();
    for (std::size_t k = first_changed_row; k < n; ++k) {
      const std::size_t r = row_perm_[k];
      for (int idx = arp[r]; idx < arp[r + 1]; ++idx) {
        lu_vals_[static_cast<std::size_t>(
            a_to_lu_[static_cast<std::size_t>(idx)])] +=
            avals[static_cast<std::size_t>(idx)];
      }
    }
  }
  // Up-looking sweep over the static pattern, rows in permuted order. For
  // row k, each L entry (column j < k, ascending) becomes the multiplier
  // l = v / U(j,j) and subtracts l × (U row j) from the row; the pattern
  // is closed under elimination by construction, so every target position
  // exists (the pos_ guard only skips positions a cancellation-proof
  // superset makes structurally absent — never silently wrong values).
  for (std::size_t k = first_changed_row; k < n; ++k) {
    const int row_begin = lu_row_ptr_[k];
    const int row_end = lu_row_ptr_[k + 1];
    for (int idx = row_begin; idx < row_end; ++idx) {
      pos_[static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(idx)])] =
          idx;
    }
    const int diag = lu_diag_[k];
    for (int idx = row_begin; idx < diag; ++idx) {
      const auto j =
          static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(idx)]);
      const double l =
          lu_vals_[static_cast<std::size_t>(idx)] * recip_diag_[j];
      lu_vals_[static_cast<std::size_t>(idx)] = l;
      if (l == 0.0) continue;
      for (int u = lu_diag_[j] + 1; u < lu_row_ptr_[j + 1]; ++u) {
        const int p =
            pos_[static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(u)])];
        if (p >= 0) {
          lu_vals_[static_cast<std::size_t>(p)] -=
              l * lu_vals_[static_cast<std::size_t>(u)];
        }
      }
    }
    for (int idx = row_begin; idx < row_end; ++idx) {
      pos_[static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(idx)])] =
          -1;
    }
    const double pivot = lu_vals_[static_cast<std::size_t>(diag)];
    if (std::abs(pivot) < threshold) {
      // (pos_ is already all -1: the row map was cleared above.)
      return false;
    }
    recip_diag_[k] = 1.0 / pivot;
  }
  numeric_valid_ = true;
  return true;
}

void SparseLu::solve(std::span<double> b) const {
  const std::size_t n = n_;
  if (b.size() != n) {
    throw std::invalid_argument("SparseLu::solve: size mismatch");
  }
  if (!analyzed_) throw std::logic_error("SparseLu::solve: not factored");
  // Solving (P A Q) y = P b with x = Q y: permute the rhs by the row
  // permutation, sweep L (unit lower) then U (reciprocal diagonal), and
  // scatter back through the column permutation.
  for (std::size_t k = 0; k < n; ++k) pb_[k] = b[row_perm_[k]];
  for (std::size_t k = 0; k < n; ++k) {
    double sum = pb_[k];
    for (int idx = lu_row_ptr_[k]; idx < lu_diag_[k]; ++idx) {
      sum -= lu_vals_[static_cast<std::size_t>(idx)] *
             pb_[static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(idx)])];
    }
    pb_[k] = sum;
  }
  for (std::size_t k = n; k-- > 0;) {
    double sum = pb_[k];
    for (int idx = lu_diag_[k] + 1; idx < lu_row_ptr_[k + 1]; ++idx) {
      sum -= lu_vals_[static_cast<std::size_t>(idx)] *
             pb_[static_cast<std::size_t>(lu_cols_[static_cast<std::size_t>(idx)])];
    }
    pb_[k] = sum * recip_diag_[k];
  }
  for (std::size_t k = 0; k < n; ++k) b[col_perm_[k]] = pb_[k];
}

bool sparse_lu_solve(const SparseMatrix& a, std::span<double> b,
                     double scale_hint) {
  if (b.size() != a.size()) {
    throw std::invalid_argument("sparse_lu_solve: size mismatch");
  }
  SparseLu lu;
  if (!lu.factor(a, scale_hint)) return false;
  lu.solve(b);
  return true;
}

}  // namespace samurai::spice
