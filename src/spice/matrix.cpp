#include "spice/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace samurai::spice {

bool lu_solve(DenseMatrix& a, std::span<double> b) {
  const std::size_t n = a.size();
  if (b.size() != n) throw std::invalid_argument("lu_solve: size mismatch");
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t pivot = k;
    double best = std::abs(a.at(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::abs(a.at(i, k));
      if (mag > best) {
        best = mag;
        pivot = i;
      }
    }
    if (best < 1e-300) return false;
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a.at(k, j), a.at(pivot, j));
      std::swap(b[k], b[pivot]);
    }
    const double inv_pivot = 1.0 / a.at(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = a.at(i, k) * inv_pivot;
      if (factor == 0.0) continue;
      a.at(i, k) = factor;
      for (std::size_t j = k + 1; j < n; ++j) a.at(i, j) -= factor * a.at(k, j);
      b[i] -= factor * b[k];
    }
  }
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= a.at(i, j) * b[j];
    b[i] = sum / a.at(i, i);
  }
  return true;
}

}  // namespace samurai::spice
