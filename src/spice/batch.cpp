#include "spice/batch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "spice/devices.hpp"
#include "spice/newton_driver.hpp"

namespace samurai::spice {

namespace {

// Mirror of the file-local helper in devices.cpp: the gather must compute
// terminal voltages exactly as Mosfet::load does so batched lanes stay
// bit-identical to their scalar twins.
double node_value(std::span<const double> x, int id) {
  return id < 0 ? 0.0 : x[static_cast<std::size_t>(id)];
}

}  // namespace

namespace detail {

std::vector<TransientResult> NewtonDriver::run_transient_batch(
    std::span<Circuit* const> circuits, const TransientOptions& options,
    BatchWorkspace& bw) {
  if (!(options.t_stop > options.t_start)) {
    throw std::invalid_argument("transient_batch: t_stop <= t_start");
  }
  if (!options.fixed_grid) {
    throw std::invalid_argument(
        "transient_batch: requires options.fixed_grid (the lock-step "
        "contract needs a deterministic shared step plan)");
  }
  if (options.on_step) {
    throw std::invalid_argument(
        "transient_batch: on_step is unsupported (lanes advance together; "
        "run coupled simulations through the scalar transient)");
  }
  if (options.activity.mode != ActivityMode::kOff) {
    throw std::invalid_argument(
        "transient_batch: activity partitioning is unsupported (the SoA "
        "channel sweep evaluates every MOSFET every iteration; use the "
        "scalar transient for partitioned arrays)");
  }
  const std::size_t lanes = circuits.size();
  if (lanes == 0) return {};
  static const std::vector<std::pair<int, double>> kNoPins;

  // ---- Bind one scalar workspace per lane. Snapshot each lane's stats
  // before its attach so the per-lane delta matches a scalar run's.
  bw.lanes_.resize(lanes);
  bw.x_.resize(lanes);
  bw.prev_scaled_.assign(lanes, 0.0);
  std::vector<SolverStats> stats_before(lanes);
  for (std::size_t k = 0; k < lanes; ++k) {
    stats_before[k] = bw.lanes_[k].stats();
    bw.lanes_[k].attach(*circuits[k], options.solver);
  }

  // ---- Topology checks: every lane must share the shape lane 0 defines,
  // and every nonlinear device must be a MOSFET (the only device the SoA
  // evaluator knows how to batch).
  const std::size_t n = circuits[0]->system_size();
  const std::size_t nodes = circuits[0]->num_nodes();
  std::vector<std::vector<const Mosfet*>> mosfets(lanes);
  for (std::size_t k = 0; k < lanes; ++k) {
    if (circuits[k]->system_size() != n ||
        circuits[k]->num_nodes() != nodes) {
      throw std::invalid_argument(
          "transient_batch: lane " + std::to_string(k) +
          " does not match lane 0's system size (all lanes must share one "
          "topology)");
    }
    for (const auto& device : circuits[k]->devices()) {
      if (device->is_linear()) continue;
      const auto* fet = dynamic_cast<const Mosfet*>(device.get());
      if (fet == nullptr) {
        throw std::invalid_argument(
            "transient_batch: non-MOSFET nonlinear device '" +
            device->name() + "' in lane " + std::to_string(k));
      }
      mosfets[k].push_back(fet);
    }
    if (mosfets[k].size() != mosfets[0].size()) {
      throw std::invalid_argument(
          "transient_batch: lane " + std::to_string(k) +
          " has a different MOSFET count than lane 0");
    }
    for (std::size_t s = 0; s < mosfets[k].size(); ++s) {
      const Mosfet* a = mosfets[0][s];
      const Mosfet* b = mosfets[k][s];
      if (a->drain() != b->drain() || a->gate() != b->gate() ||
          a->source() != b->source() || a->bulk() != b->bulk()) {
        throw std::invalid_argument(
            "transient_batch: MOSFET slot " + std::to_string(s) +
            " is wired differently in lane " + std::to_string(k));
      }
    }
  }
  const std::size_t num_slots = mosfets[0].size();

  // One SoA evaluator per MOSFET slot, holding all K lanes' constants.
  bw.slots_.resize(num_slots);
  std::vector<const physics::MosDevice*> slot_models(lanes);
  for (std::size_t s = 0; s < num_slots; ++s) {
    for (std::size_t k = 0; k < lanes; ++k) {
      slot_models[k] = &mosfets[k][s]->model();
    }
    bw.slots_[s].assign(slot_models);
  }

  // ---- Per-lane DC operating point. On the sparse engine, lane 0 pays
  // the one symbolic analysis and every later lane adopts it (identical
  // Jacobian pattern by the topology checks above), so its first
  // factorization is a numeric refactor.
  for (std::size_t k = 0; k < lanes; ++k) {
    NewtonWorkspace& ws = bw.lanes_[k];
    if (k > 0 && ws.use_sparse_ && bw.lanes_[0].use_sparse_) {
      ws.sp_lu_.adopt_analysis_from(bw.lanes_[0].sp_lu_);
    }
    const auto dc_result = dc(ws, *circuits[k], options.dc);
    if (!dc_result.converged) {
      throw std::runtime_error("transient_batch: DC operating point did "
                               "not converge in lane " + std::to_string(k));
    }
    bw.x_[k] = dc_result.x;
    for (auto& device : circuits[k]->devices()) device->reset_history();
    for (auto& device : circuits[k]->devices()) {
      device->commit(bw.x_[k], 0.0, 0.0);
    }
  }

  // ---- One shared step plan over the union of every lane's breakpoints.
  // A lane whose own breakpoint set is a subset simply takes a few extra
  // (exact) steps; the union keeps the accepted-step sequence common, so
  // a scalar rerun with the union as extra_breakpoints reproduces any
  // lane exactly.
  const double span = options.t_stop - options.t_start;
  const double dt_max = options.dt_max > 0.0 ? options.dt_max : span / 200.0;
  std::vector<double> breakpoints;
  for (std::size_t k = 0; k < lanes; ++k) {
    const auto lane_bps = collect_breakpoints(*circuits[k], options);
    breakpoints.insert(breakpoints.end(), lane_bps.begin(), lane_bps.end());
  }
  std::sort(breakpoints.begin(), breakpoints.end());
  breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end(),
                                [&](double a, double b) {
                                  return std::abs(a - b) < span * 1e-12;
                                }),
                    breakpoints.end());
  const auto plan = plan_fixed_grid(options, dt_max, breakpoints);

  std::vector<TransientResult> results;
  results.reserve(lanes);
  for (std::size_t k = 0; k < lanes; ++k) {
    results.emplace_back(circuits[k]->node_names());
    results[k].reserve(plan.size() + 1);
    results[k].record(options.t_start, bw.x_[k], nodes);
    bw.lanes_[k].x_prev_ = bw.x_[k];
  }

  // ---- Lock-step march. Every lane performs exactly the scalar
  // fixed-grid sequence: prepare_base → (assemble_linear → channel stamps
  // → finish_iteration)* → commit/record. The only batched part is the
  // middle of each Newton iteration, where all active lanes' MOSFET
  // channels are gathered per slot and evaluated in one SoA sweep.
  double dt_prev = 0.0;
  bool after_discontinuity = true;
  for (const GridStep& gs : plan) {
    const double a0 = gs.use_be ? 1.0 / gs.step : 2.0 / gs.step;
    const double ci = gs.use_be ? 0.0 : -1.0;
    const bool have_predictor = dt_prev > 0.0 && !after_discontinuity;

    for (std::size_t k = 0; k < lanes; ++k) {
      NewtonWorkspace& ws = bw.lanes_[k];
      ws.x_new_ = bw.x_[k];
      if (have_predictor) {
        const std::vector<double>& x = bw.x_[k];
        for (std::size_t i = 0; i < x.size(); ++i) {
          ws.x_pred_[i] = x[i] + (x[i] - ws.x_prev_[i]) * (gs.step / dt_prev);
          ws.x_new_[i] = ws.x_pred_[i];
        }
      }
      prepare_base(ws, gs.t_next, a0, ci, options.newton, options.dc.gmin,
                   kNoPins);
      bw.prev_scaled_[k] = std::numeric_limits<double>::infinity();
    }

    bw.active_.resize(lanes);
    for (std::size_t k = 0; k < lanes; ++k) bw.active_[k] = k;

    for (int iter = 0; iter < options.newton.max_iterations && !bw.active_.empty();
         ++iter) {
      for (const std::size_t k : bw.active_) {
        NewtonWorkspace& ws = bw.lanes_[k];
        ++ws.stats_.newton_iterations;
        assemble_linear(ws, ws.x_new_);
      }

      // Gather the active lanes' terminal voltages per slot (compacted)
      // and evaluate every channel in one sweep.
      const std::size_t count = bw.active_.size();
      for (std::size_t s = 0; s < num_slots; ++s) {
        physics::MosBatch& mb = bw.slots_[s];
        double* vgs = mb.vgs();
        double* vds = mb.vds();
        double* vbs = mb.vbs();
        for (std::size_t j = 0; j < count; ++j) {
          const std::size_t k = bw.active_[j];
          const Mosfet* fet = mosfets[k][s];
          const std::span<const double> x = bw.lanes_[k].x_new_;
          const double vd = node_value(x, fet->drain());
          const double vg = node_value(x, fet->gate());
          const double vs = node_value(x, fet->source());
          const double vb = node_value(x, fet->bulk());
          vgs[j] = vg - vs;
          vds[j] = vd - vs;
          vbs[j] = vb - vs;
        }
        mb.evaluate(bw.active_.data(), count);
      }

      // Scatter: each lane replays its stamps in device order, which keeps
      // the sparse stamp-program cursor in sync exactly as a scalar solve.
      for (std::size_t j = 0; j < count; ++j) {
        const std::size_t k = bw.active_[j];
        NewtonWorkspace& ws = bw.lanes_[k];
        const LoadContext ctx =
            nonlinear_context(ws, ws.x_new_, gs.t_next, a0, ci);
        for (std::size_t s = 0; s < num_slots; ++s) {
          mosfets[k][s]->stamp_channel(ctx, bw.slots_[s].op(j));
        }
        ws.stats_.device_loads += num_slots;
        if (ws.use_sparse_ && ws.sp_sink_.cursor() != ws.sp_nl_count_) {
          throw std::logic_error(
              "transient_batch: nonlinear stamp program desync");
        }
      }

      bw.next_active_.clear();
      for (const std::size_t k : bw.active_) {
        NewtonWorkspace& ws = bw.lanes_[k];
        const IterationResult r = finish_iteration(
            ws, ws.x_new_, options.newton, iter, bw.prev_scaled_[k]);
        if (r.singular) {
          throw std::runtime_error(
              "transient_batch: singular Jacobian in lane " +
              std::to_string(k) + " at t=" + std::to_string(gs.t_next));
        }
        if (!r.converged) bw.next_active_.push_back(k);
      }
      bw.active_.swap(bw.next_active_);
    }
    if (!bw.active_.empty()) {
      throw std::runtime_error(
          "transient_batch: Newton did not converge on the fixed grid at "
          "t=" + std::to_string(gs.t_next) + " (lane " +
          std::to_string(bw.active_.front()) + ")");
    }

    for (std::size_t k = 0; k < lanes; ++k) {
      NewtonWorkspace& ws = bw.lanes_[k];
      ++ws.stats_.steps_accepted;
      for (auto& device : circuits[k]->devices()) {
        device->commit(ws.x_new_, a0, ci);
      }
      ws.x_prev_ = bw.x_[k];
      bw.x_[k].swap(ws.x_new_);
      results[k].record(gs.t_next, bw.x_[k], nodes);
    }
    dt_prev = gs.step;
    after_discontinuity = gs.hit_breakpoint;
  }

  // ---- Stats: each lane's delta is what its scalar twin would report,
  // plus the batched-engine attribution (bt_batches counted once, on
  // lane 0).
  for (std::size_t k = 0; k < lanes; ++k) {
    NewtonWorkspace& ws = bw.lanes_[k];
    ++ws.stats_.transients;
    SolverStats delta = ws.stats_.since(stats_before[k]);
    delta.bt_batches = k == 0 ? 1 : 0;
    delta.bt_lanes = 1;
    delta.bt_steps = plan.size();
    results[k].set_stats(delta);
    solver_stats_accumulate(delta);
  }
  return results;
}

}  // namespace detail

std::vector<TransientResult> transient_batch(std::span<Circuit* const> circuits,
                                             const TransientOptions& options,
                                             BatchWorkspace& workspace) {
  return detail::NewtonDriver::run_transient_batch(circuits, options,
                                                   workspace);
}

std::vector<TransientResult> transient_batch(std::span<Circuit* const> circuits,
                                             const TransientOptions& options) {
  BatchWorkspace workspace;
  return detail::NewtonDriver::run_transient_batch(circuits, options,
                                                   workspace);
}

}  // namespace samurai::spice
