// Circuit container and the device stamping interface — a compact MNA
// framework in the style of (and substituting for) the paper's SpiceOPUS.
//
// Unknown vector x = [node voltages (ground excluded) ; branch currents].
// Devices stamp the Newton system J·Δx = -f, where f is the vector of KCL
// residuals (sum of currents *leaving* each node) plus branch equations.
// Energy-storage elements use companion models: the integrator supplies
// a0 and ci such that i(t_{n+1}) = a0·(q_{n+1} - q_n) + ci·i_n
// (a0 = 1/h, ci = 0 for backward Euler; a0 = 2/h, ci = -1 for trapezoidal;
// a0 = 0 for DC, which opens all charge branches).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/matrix.hpp"

namespace samurai::spice {

/// Ground node id. Stamps to ground are dropped by StampSink::stamp.
inline constexpr int kGround = -1;

/// Which part of a device the solver is asking for. The transient fast
/// path loads the affine ("linear") part of every device once per step at
/// x = 0 — yielding the constant Jacobian stamps and the residual offset
/// f(0) — and then re-loads only the nonlinear parts (MOSFET channels)
/// inside the Newton iteration on top of a memcpy of the cached base.
enum class LoadScope {
  kAll,        ///< classic single-pass load (DC fallback, direct callers)
  kLinear,     ///< only stamps affine in x with x-independent Jacobian
  kNonlinear,  ///< only stamps whose Jacobian depends on the iterate
};

struct LoadContext {
  double time = 0.0;
  double a0 = 0.0;  ///< companion coefficient, 0 in DC
  double ci = 0.0;  ///< history-current coefficient (0 for BE, -1 for TRAP)
  /// Jacobian stamping target. Dense solves bind it to a DenseMatrix;
  /// the sparse path binds recorded slot-pointer programs (see StampSink).
  StampSink* jacobian = nullptr;
  std::vector<double>* residual = nullptr;
  std::span<const double> x;
  LoadScope scope = LoadScope::kAll;
};

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const noexcept { return name_; }

  /// Stamp Jacobian and residual at the current iterate, honouring
  /// `ctx.scope`: a kLinear call must stamp exactly the affine-in-x part
  /// (so that at x = 0 the residual is the device's constant offset), a
  /// kNonlinear call exactly the rest, and kAll both.
  ///
  /// Stamp-sequence contract (sparse slot replay): for a fixed scope and
  /// a fixed truth value of `a0 == 0`, the sequence of jacobian->stamp
  /// calls — count, order and (row, col) targets — must not depend on
  /// `ctx.x`, `ctx.time` or the stamped values. The sparse solver records
  /// each program once per topology and replays it through resolved
  /// value-slot pointers; a data-dependent stamp sequence would desync
  /// the replay cursor (checked after every device loop).
  virtual void load(const LoadContext& ctx) = 0;

  /// True when the device's *entire* load is affine in x with a Jacobian
  /// that depends only on (a0, ci) — R, C and independent sources. Such
  /// devices are skipped entirely inside the Newton iteration; partially
  /// linear devices (the MOSFET's constant companion capacitances) split
  /// their work across the kLinear/kNonlinear scopes instead.
  virtual bool is_linear() const noexcept { return false; }

  /// Nodes of x that the device's kNonlinear load reads — the elision
  /// contract for the activity-partitioned engine. A non-empty return
  /// promises that, for this device:
  ///  - the kNonlinear stamps (Jacobian values *and* residual
  ///    contributions) are a pure function of x at exactly these indices
  ///    — independent of time, a0/ci and any committed history — and
  ///  - the kNonlinear residual writes touch only these indices, with at
  ///    most one addition per index per load.
  /// Under that promise the engine may replay a cached snapshot of the
  /// stamps whenever x at these indices is unchanged (bit-identical at
  /// tolerance 0). Ground (negative) entries are permitted and ignored.
  /// The default empty span opts the device out of elision entirely.
  virtual std::span<const int> nonlinear_inputs() const { return {}; }

  /// Record charge/current history after a step is accepted. `a0`/`ci`
  /// are the coefficients the *accepted* step was integrated with.
  virtual void commit(std::span<const double> x, double a0, double ci);

  /// Forget all history (called before a fresh transient).
  virtual void reset_history();

  /// Contribute mandatory time points (source corners, trace switches).
  virtual void collect_breakpoints(std::vector<double>& breakpoints) const;

 private:
  std::string name_;
};

class Circuit {
 public:
  /// Get-or-create a node id. "0" and "gnd" name the ground node.
  int node(const std::string& name);

  /// Allocate a branch-current unknown; returns its index in x.
  int alloc_branch();

  /// Construct and register a device.
  template <typename DeviceT, typename... Args>
  DeviceT& add(Args&&... args) {
    auto device = std::make_unique<DeviceT>(std::forward<Args>(args)...);
    DeviceT& ref = *device;
    devices_.push_back(std::move(device));
    return ref;
  }

  std::size_t num_nodes() const noexcept { return node_names_.size(); }
  std::size_t num_branches() const noexcept { return num_branches_; }
  /// Size of the MNA unknown vector.
  std::size_t system_size() const noexcept { return num_nodes() + num_branches_; }
  /// Branch unknowns live after the node voltages in x.
  std::size_t branch_offset() const noexcept { return num_nodes(); }
  /// Index of branch `b` in x (call after all nodes are created).
  int branch_index(int branch) const {
    return static_cast<int>(branch_offset()) + branch;
  }

  const std::string& node_name(int id) const { return node_names_.at(static_cast<std::size_t>(id)); }
  const std::vector<std::string>& node_names() const noexcept { return node_names_; }
  bool has_node(const std::string& name) const { return node_ids_.count(name) != 0; }
  int find_node(const std::string& name) const;

  std::span<const std::unique_ptr<Device>> devices() const {
    return {devices_.data(), devices_.size()};
  }
  std::span<std::unique_ptr<Device>> devices() {
    return {devices_.data(), devices_.size()};
  }

  /// Find a device by name; returns nullptr if absent or wrong type.
  template <typename DeviceT>
  DeviceT* find(const std::string& name) {
    for (auto& device : devices_) {
      if (device->name() == name) return dynamic_cast<DeviceT*>(device.get());
    }
    return nullptr;
  }

 private:
  std::unordered_map<std::string, int> node_ids_;
  std::vector<std::string> node_names_;
  std::size_t num_branches_ = 0;
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace samurai::spice
