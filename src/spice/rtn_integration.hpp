// Generic SAMURAI <-> SPICE integration for *arbitrary* circuits — the
// paper's methodology (Fig. 8 left) lifted out of the SRAM-specific
// pipeline so any parsed netlist can request trap-level RTN on any of its
// MOSFETs via `.rtn` cards:
//
//   .rtn M1 scale=30 seed=7
//
// Flow: run the nominal transient, extract each tagged device's
// time-varying bias, sample a trap profile, run Algorithm 1, and re-run
// the transient with the I_RTN traces injected opposing each channel
// current.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/rtn_generator.hpp"
#include "core/waveform.hpp"
#include "physics/trap.hpp"
#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/devices.hpp"

namespace samurai::spice {

/// One `.rtn` request (also constructible programmatically).
struct RtnRequest {
  std::string device;      ///< Mosfet name in the circuit
  double scale = 1.0;      ///< amplitude scaling (paper's x30)
  std::uint64_t seed = 1;  ///< trap population + trajectory seed
};

/// Extract a MOSFET's NMOS-equivalent gate bias V_gs(t) (positive when
/// the channel conducts) and signed channel current I_d(t) from a
/// transient solution. Shared by the SRAM methodology and the netlist
/// integration.
void extract_device_bias(const TransientResult& result, const Circuit& circuit,
                         const Mosfet& mosfet, core::Pwl& v_gs, core::Pwl& i_d);

struct DeviceRtnTrace {
  std::string device;
  std::vector<physics::Trap> traps;
  core::StepTrace n_filled;
  core::Pwl i_rtn;
  core::UniformisationStats stats;
};

struct RtnTransientResult {
  TransientResult nominal;
  TransientResult with_rtn;
  std::vector<DeviceRtnTrace> traces;
};

/// Run the two-pass RTN methodology on a circuit factory: `build` must
/// produce identical circuits on each call (it is invoked twice — once
/// for the nominal run, once for the injected run). Unknown device names
/// in `requests` throw std::invalid_argument.
RtnTransientResult run_rtn_transient(
    const std::function<std::unique_ptr<Circuit>()>& build,
    const TransientOptions& options, const std::vector<RtnRequest>& requests);

/// Convenience: parse a netlist containing `.rtn` cards and run the full
/// flow (the netlist must contain `.tran`).
RtnTransientResult run_netlist_rtn(const std::string& netlist_text);

}  // namespace samurai::spice
