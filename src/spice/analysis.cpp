#include "spice/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/grid.hpp"

namespace samurai::spice {

namespace {

struct NewtonOutcome {
  bool converged = false;
  int iterations = 0;
};

/// One Newton solve of the MNA system at fixed (time, a0, ci), warm-started
/// from and returning in `x`. `pins` adds a 1 S conductance from node id to
/// a target voltage (nodeset); `gmin` leaks every node to ground.
NewtonOutcome newton_solve(Circuit& circuit, std::vector<double>& x,
                           double time, double a0, double ci,
                           const NewtonOptions& options, double gmin,
                           const std::vector<std::pair<int, double>>& pins) {
  const std::size_t n = circuit.system_size();
  const std::size_t nodes = circuit.num_nodes();
  DenseMatrix jacobian(n);
  std::vector<double> residual(n);
  std::vector<double> delta(n);

  NewtonOutcome outcome;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    outcome.iterations = iter + 1;
    jacobian.set_zero();
    std::fill(residual.begin(), residual.end(), 0.0);
    LoadContext ctx;
    ctx.time = time;
    ctx.a0 = a0;
    ctx.ci = ci;
    ctx.jacobian = &jacobian;
    ctx.residual = &residual;
    ctx.x = x;
    for (auto& device : circuit.devices()) device->load(ctx);
    for (std::size_t i = 0; i < nodes; ++i) {
      jacobian.at(i, i) += gmin;
      residual[i] += gmin * x[i];
    }
    for (const auto& [node, value] : pins) {
      if (node < 0) continue;
      const auto i = static_cast<std::size_t>(node);
      jacobian.at(i, i) += 1.0;
      residual[i] += 1.0 * (x[i] - value);
    }

    double max_residual = 0.0;
    for (std::size_t i = 0; i < nodes; ++i) {
      max_residual = std::max(max_residual, std::abs(residual[i]));
    }

    delta = residual;
    if (!lu_solve(jacobian, delta)) return outcome;  // singular

    // Damp: clamp the largest node-voltage update.
    double max_dv = 0.0;
    for (std::size_t i = 0; i < nodes; ++i) {
      max_dv = std::max(max_dv, std::abs(delta[i]));
    }
    const double damp =
        max_dv > options.dv_limit ? options.dv_limit / max_dv : 1.0;
    for (std::size_t i = 0; i < n; ++i) x[i] -= damp * delta[i];

    if (max_dv * damp < options.vntol && max_residual < options.abstol &&
        damp == 1.0) {
      outcome.converged = true;
      return outcome;
    }
  }
  return outcome;
}

std::vector<std::pair<int, double>> resolve_pins(
    Circuit& circuit, const std::map<std::string, double>& nodeset) {
  std::vector<std::pair<int, double>> pins;
  pins.reserve(nodeset.size());
  for (const auto& [name, value] : nodeset) {
    pins.emplace_back(circuit.find_node(name), value);
  }
  return pins;
}

}  // namespace

DcResult dc_operating_point(Circuit& circuit, const DcOptions& options) {
  DcResult result;
  result.x.assign(circuit.system_size(), 0.0);
  const auto pins = resolve_pins(circuit, options.nodeset);

  // Phase 1: solve with nodeset pins engaged (if any).
  if (!pins.empty()) {
    for (const auto& [node, value] : pins) {
      if (node >= 0) result.x[static_cast<std::size_t>(node)] = value;
    }
    newton_solve(circuit, result.x, 0.0, 0.0, 0.0, options.newton,
                 std::max(options.gmin, 1e-9), pins);
  }

  // Phase 2: plain Newton; on failure, gmin-step from 1e-2 down.
  auto outcome = newton_solve(circuit, result.x, 0.0, 0.0, 0.0, options.newton,
                              options.gmin, {});
  if (!outcome.converged) {
    std::vector<double> x = result.x;
    bool ladder_ok = true;
    for (double gmin = 1e-2; gmin >= options.gmin; gmin *= 0.1) {
      const auto step = newton_solve(circuit, x, 0.0, 0.0, 0.0, options.newton,
                                     gmin, pins);
      if (!step.converged) {
        ladder_ok = false;
        break;
      }
    }
    if (ladder_ok) {
      outcome = newton_solve(circuit, x, 0.0, 0.0, 0.0, options.newton,
                             options.gmin, {});
      if (outcome.converged) result.x = x;
    }
  }
  result.converged = outcome.converged;
  result.iterations = outcome.iterations;
  return result;
}

// ---------------------------------------------------------------- results

TransientResult::TransientResult(std::vector<std::string> node_names)
    : names_(std::move(node_names)), samples_(names_.size()) {}

void TransientResult::record(double t, std::span<const double> x,
                             std::size_t num_nodes) {
  times_.push_back(t);
  for (std::size_t i = 0; i < num_nodes && i < samples_.size(); ++i) {
    samples_[i].push_back(x[i]);
  }
}

std::size_t TransientResult::node_index(const std::string& node) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == node) return i;
  }
  throw std::invalid_argument("TransientResult: unknown node " + node);
}

const std::vector<double>& TransientResult::voltage_samples(
    const std::string& node) const {
  return samples_[node_index(node)];
}

core::Pwl TransientResult::voltage(const std::string& node) const {
  return core::Pwl(times_, samples_[node_index(node)]);
}

double TransientResult::voltage_at(const std::string& node, double t) const {
  return util::interp_linear(times_, samples_[node_index(node)], t);
}

core::Pwl TransientResult::voltage_between(const std::string& a,
                                           const std::string& b) const {
  const bool a_gnd = (a == "0" || a == "gnd" || a == "GND");
  const bool b_gnd = (b == "0" || b == "gnd" || b == "GND");
  std::vector<double> values(times_.size(), 0.0);
  if (!a_gnd) {
    const auto& va = samples_[node_index(a)];
    for (std::size_t i = 0; i < values.size(); ++i) values[i] += va[i];
  }
  if (!b_gnd) {
    const auto& vb = samples_[node_index(b)];
    for (std::size_t i = 0; i < values.size(); ++i) values[i] -= vb[i];
  }
  return core::Pwl(times_, std::move(values));
}

// --------------------------------------------------------------- transient

TransientResult transient(Circuit& circuit, const TransientOptions& options) {
  if (!(options.t_stop > options.t_start)) {
    throw std::invalid_argument("transient: t_stop <= t_start");
  }
  const std::size_t nodes = circuit.num_nodes();
  const double span = options.t_stop - options.t_start;
  const double dt_max = options.dt_max > 0.0 ? options.dt_max : span / 200.0;

  // Initial operating point at t_start.
  DcOptions dc = options.dc;
  auto dc_result = dc_operating_point(circuit, dc);
  if (!dc_result.converged) {
    throw std::runtime_error("transient: DC operating point did not converge");
  }
  std::vector<double> x = dc_result.x;
  for (auto& device : circuit.devices()) device->reset_history();
  for (auto& device : circuit.devices()) device->commit(x, 0.0, 0.0);

  // Breakpoints: source corners + caller extras, clipped to the window.
  std::vector<double> breakpoints = options.extra_breakpoints;
  for (const auto& device : circuit.devices()) {
    device->collect_breakpoints(breakpoints);
  }
  breakpoints.push_back(options.t_stop);
  std::sort(breakpoints.begin(), breakpoints.end());
  breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end(),
                                [&](double a, double b) {
                                  return std::abs(a - b) < span * 1e-12;
                                }),
                    breakpoints.end());

  TransientResult result(circuit.node_names());
  result.record(options.t_start, x, nodes);

  double t = options.t_start;
  double dt = std::min(options.dt_initial, dt_max);
  double dt_prev = 0.0;
  std::vector<double> x_prev = x;   // solution at t - dt_prev
  std::vector<double> x_pred(x.size());
  bool after_discontinuity = true;  // force BE on the first step

  std::size_t bp_index = 0;
  while (bp_index < breakpoints.size() && breakpoints[bp_index] <= t + span * 1e-12) {
    ++bp_index;
  }

  const int max_rejects = 60;
  int rejects = 0;
  while (t < options.t_stop - span * 1e-12) {
    bool hit_breakpoint = false;
    double step = std::min(dt, dt_max);
    if (bp_index < breakpoints.size()) {
      const double to_bp = breakpoints[bp_index] - t;
      if (step >= to_bp - options.dt_min) {
        step = to_bp;
        hit_breakpoint = true;
      }
    }
    if (t + step > options.t_stop) step = options.t_stop - t;

    const bool use_be = after_discontinuity ||
                        options.method == IntegrationMethod::kBackwardEuler;
    const double a0 = use_be ? 1.0 / step : 2.0 / step;
    const double ci = use_be ? 0.0 : -1.0;

    // Predictor: linear extrapolation (also the warm start).
    const bool have_predictor = dt_prev > 0.0 && !after_discontinuity;
    std::vector<double> x_new = x;
    if (have_predictor) {
      for (std::size_t i = 0; i < x.size(); ++i) {
        x_pred[i] = x[i] + (x[i] - x_prev[i]) * (step / dt_prev);
      }
      x_new = x_pred;
    }

    const auto outcome = newton_solve(circuit, x_new, t + step, a0, ci,
                                      options.newton, options.dc.gmin, {});
    bool accept = outcome.converged;
    double err_ratio = 0.0;
    if (accept && have_predictor) {
      for (std::size_t i = 0; i < nodes; ++i) {
        const double tol = options.lte_reltol *
                               std::max(std::abs(x_new[i]), std::abs(x[i])) +
                           options.lte_abstol;
        err_ratio = std::max(err_ratio, std::abs(x_new[i] - x_pred[i]) / tol);
      }
      if (err_ratio > 10.0 && step > 4.0 * options.dt_min && !hit_breakpoint) {
        accept = false;
      }
    }

    if (!accept) {
      if (++rejects > max_rejects || step <= 2.0 * options.dt_min) {
        throw std::runtime_error("transient: step size underflow at t=" +
                                 std::to_string(t));
      }
      dt = step / 4.0;
      continue;
    }
    rejects = 0;

    for (auto& device : circuit.devices()) device->commit(x_new, a0, ci);
    x_prev = x;
    x = x_new;
    dt_prev = step;
    t += step;
    result.record(t, x, nodes);
    if (options.on_step) options.on_step(t, x);

    after_discontinuity = hit_breakpoint;
    if (hit_breakpoint) ++bp_index;

    // Step-size controller from the predictor/corrector difference.
    double grow = 1.5;
    if (have_predictor && err_ratio > 0.0) {
      grow = std::clamp(std::sqrt(1.0 / err_ratio), 0.3, 2.0);
    }
    dt = std::clamp(step * grow, options.dt_min, dt_max);
  }
  return result;
}

}  // namespace samurai::spice
