#include "spice/analysis.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string_view>
#include <unordered_set>

#include "spice/newton_driver.hpp"
#include "util/grid.hpp"

namespace samurai::spice {



// ------------------------------------------------------------ SolverStats

#define SAMURAI_SOLVER_STAT_FIELDS(X) \
  X(newton_iterations)                \
  X(lu_factorizations)                \
  X(lu_solves)                        \
  X(bypass_hits)                      \
  X(device_loads)                     \
  X(linear_cache_hits)                \
  X(steps_accepted)                   \
  X(steps_rejected)                   \
  X(transients)                       \
  X(workspace_allocations)            \
  X(sp_symbolic_analyses)             \
  X(sp_numeric_refactors)             \
  X(sp_solves)                        \
  X(bt_batches)                       \
  X(bt_lanes)                         \
  X(bt_steps)                         \
  X(ap_elided_loads)                  \
  X(ap_partial_refactors)             \
  X(ap_rows_skipped)                  \
  X(ap_folded_cells)

void SolverStats::merge(const SolverStats& other) {
#define X(field) field += other.field;
  SAMURAI_SOLVER_STAT_FIELDS(X)
#undef X
}

SolverStats SolverStats::since(const SolverStats& other) const {
  SolverStats delta;
#define X(field) delta.field = field - other.field;
  SAMURAI_SOLVER_STAT_FIELDS(X)
#undef X
  return delta;
}

namespace {

struct AtomicSolverStats {
#define X(field) std::atomic<std::uint64_t> field{0};
  SAMURAI_SOLVER_STAT_FIELDS(X)
#undef X
};

AtomicSolverStats& global_solver_stats() {
  static AtomicSolverStats stats;
  return stats;
}

}  // namespace

SolverStats solver_stats_snapshot() {
  auto& global = global_solver_stats();
  SolverStats stats;
#define X(field) stats.field = global.field.load(std::memory_order_relaxed);
  SAMURAI_SOLVER_STAT_FIELDS(X)
#undef X
  return stats;
}

// ------------------------------------------------------------ ActivityMode

ActivityMode activity_mode_from_string(const std::string& text) {
  if (text == "off") return ActivityMode::kOff;
  if (text == "elide") return ActivityMode::kElide;
  if (text == "schur") return ActivityMode::kSchur;
  throw std::invalid_argument("unknown activity mode '" + text +
                              "' (expected off|elide|schur)");
}

std::string activity_mode_to_string(ActivityMode mode) {
  switch (mode) {
    case ActivityMode::kOff: return "off";
    case ActivityMode::kElide: return "elide";
    case ActivityMode::kSchur: return "schur";
  }
  return "off";
}

namespace detail {
void solver_stats_accumulate(const SolverStats& stats) {
  auto& global = global_solver_stats();
#define X(field) \
  global.field.fetch_add(stats.field, std::memory_order_relaxed);
  SAMURAI_SOLVER_STAT_FIELDS(X)
#undef X
}
}  // namespace detail

// -------------------------------------------------------- NewtonWorkspace

void NewtonWorkspace::attach(Circuit& circuit, SolverKind solver,
                             const ActivityPartition* activity) {
  circuit_ = &circuit;
  const std::size_t n = circuit.system_size();
  const bool resized = n != n_;
  if (resized) {
    n_ = n;
    pivots_.assign(n, 0);
    residual_.assign(n, 0.0);
    base_res_.assign(n, 0.0);
    delta_.assign(n, 0.0);
    zero_x_.assign(n, 0.0);
    x_new_.assign(n, 0.0);
    x_prev_.assign(n, 0.0);
    x_pred_.assign(n, 0.0);
    ++stats_.workspace_allocations;
  }
  devices_.clear();
  nonlinear_devices_.clear();
  for (auto& device : circuit.devices()) {
    devices_.push_back(device.get());
    if (!device->is_linear()) nonlinear_devices_.push_back(device.get());
  }
  base_valid_ = false;
  lu_valid_ = false;
  bypass_enabled_ = true;
  last_iter_bypassed_ = false;
  bypass_good_ = 0;
  bypass_bad_ = 0;

  ap_mode_ = activity ? activity->mode : ActivityMode::kOff;
  ap_tol_ = activity ? activity->tolerance : 0.0;
  ap_floors_valid_ = false;
  ap_dirty_min_ = 0;

  // Activity partitioning rides the sparse engine exclusively: elision
  // replays stamp programs through resolved slots, and the Schur fold is
  // an ordering of the sparse factorization.
  use_sparse_ = solver == SolverKind::kSparse ||
                (solver == SolverKind::kAuto && n >= kSparseAutoThreshold) ||
                ap_mode_ != ActivityMode::kOff;
  if (!use_sparse_) {
    // Dense buffers are sized lazily so a sparse-only workspace never
    // pays the O(n²) allocations. A same-size engine switch still counts
    // the reallocation it causes.
    bool dense_alloc = false;
    dense_alloc |= jacobian_.resize(n);
    dense_alloc |= base_jac_.resize(n);
    dense_alloc |= lu_.resize(n);
    if (dense_alloc && !resized) ++stats_.workspace_allocations;
    sp_lu_.invalidate();
    return;
  }

  // Record the three stamp programs at x = 0 with values discarded. A
  // device's stamp sequence is fixed per (scope, a0 == 0) — see
  // Device::load — so the linear program is recorded twice (transient
  // a0 != 0, DC a0 == 0) and the nonlinear one once. base_res_ doubles as
  // a throwaway residual sink; every solve re-zeroes it anyway.
  sp_coords_.clear();
  LoadContext record_ctx;
  record_ctx.x = zero_x_;
  record_ctx.residual = &base_res_;
  StampSink recorder;
  recorder.bind_record(&sp_coords_);
  record_ctx.jacobian = &recorder;
  record_ctx.a0 = 1.0;
  record_ctx.scope = LoadScope::kLinear;
  for (Device* device : devices_) device->load(record_ctx);
  sp_lin_tr_count_ = sp_coords_.size();
  record_ctx.a0 = 0.0;
  for (Device* device : devices_) device->load(record_ctx);
  sp_lin_dc_count_ = sp_coords_.size() - sp_lin_tr_count_;
  record_ctx.a0 = 1.0;
  record_ctx.scope = LoadScope::kNonlinear;
  const std::size_t nl_base = sp_coords_.size();
  ap_prog_begin_.clear();
  ap_prog_end_.clear();
  ap_prog_begin_.reserve(nonlinear_devices_.size());
  ap_prog_end_.reserve(nonlinear_devices_.size());
  for (Device* device : nonlinear_devices_) {
    ap_prog_begin_.push_back(sp_coords_.size() - nl_base);
    device->load(record_ctx);
    ap_prog_end_.push_back(sp_coords_.size() - nl_base);
  }
  sp_nl_count_ = sp_coords_.size() - sp_lin_tr_count_ - sp_lin_dc_count_;

  // Pattern = union of all programs + full diagonal, shared by the base
  // and the per-iteration Jacobian so values copy with one memcpy. The
  // symbolic LU survives whenever the pattern is unchanged — Monte-Carlo
  // repetitions re-attach, re-record and re-resolve, but analyse once.
  const bool pattern_changed = sp_base_.build_pattern(n, sp_coords_);
  if (pattern_changed) {
    sp_jac_.copy_pattern_from(sp_base_);
    sp_lu_.invalidate();
    if (!resized) ++stats_.workspace_allocations;
  } else {
    sp_jac_.set_zero();
  }

  // Resolve each program's (row, col) pairs to value-slot pointers once;
  // per-iteration stamping is then pure pointer chasing.
  auto resolve = [this](std::vector<double*>& slots, SparseMatrix& matrix,
                        std::size_t first, std::size_t count) {
    slots.clear();
    slots.reserve(count);
    for (std::size_t i = first; i < first + count; ++i) {
      double* slot = matrix.slot(sp_coords_[i].first, sp_coords_[i].second);
      if (slot == nullptr) {
        throw std::logic_error("NewtonWorkspace: recorded stamp missing "
                               "from the sparse pattern");
      }
      slots.push_back(slot);
    }
  };
  resolve(sp_lin_tr_slots_, sp_base_, 0, sp_lin_tr_count_);
  resolve(sp_lin_dc_slots_, sp_base_, sp_lin_tr_count_, sp_lin_dc_count_);
  resolve(sp_nl_slots_, sp_jac_, sp_lin_tr_count_ + sp_lin_dc_count_,
          sp_nl_count_);
  sp_diag_slots_.clear();
  sp_diag_slots_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sp_diag_slots_.push_back(sp_base_.slot(static_cast<int>(i),
                                           static_cast<int>(i)));
  }
  std::fill(base_res_.begin(), base_res_.end(), 0.0);

  // Activity-partition caches: resolve the quiescent-device names against
  // this circuit's nonlinear devices and size the elision state. In kSchur
  // mode the ordering groups go to the sparse LU (set_ordering_groups is a
  // no-op when unchanged, so Monte-Carlo re-attaches keep the analysis).
  if (ap_mode_ != ActivityMode::kOff) {
    std::unordered_set<std::string_view> quiescent;
    quiescent.reserve(activity->quiescent_devices.size());
    for (const auto& name : activity->quiescent_devices) {
      quiescent.insert(name);
    }
    const std::size_t count = nonlinear_devices_.size();
    ap_elidable_.assign(count, 0);
    ap_input_begin_.assign(count + 1, 0);
    ap_input_nodes_.clear();
    for (std::size_t i = 0; i < count; ++i) {
      Device* device = nonlinear_devices_[i];
      if (quiescent.count(device->name()) != 0) {
        const auto inputs = device->nonlinear_inputs();
        if (!inputs.empty()) {
          ap_elidable_[i] = 1;
          for (const int id : inputs) {
            if (id >= 0) ap_input_nodes_.push_back(id);
          }
        }
      }
      ap_input_begin_[i + 1] = ap_input_nodes_.size();
    }
    ap_key_.assign(ap_input_nodes_.size(), 0.0);
    ap_res_cache_.assign(ap_input_nodes_.size(), 0.0);
    ap_jac_cache_.assign(sp_nl_count_, 0.0);
    ap_valid_.assign(count, 0);
    ap_scratch_res_.assign(n, 0.0);
    if (ap_mode_ == ActivityMode::kSchur) {
      sp_lu_.set_ordering_groups(activity->groups);
      stats_.ap_folded_cells += activity->groups.size();
    } else {
      sp_lu_.set_ordering_groups({});
    }
  } else {
    sp_lu_.set_ordering_groups({});
  }
}

namespace detail {

void NewtonDriver::prepare_base(NewtonWorkspace& ws, double time, double a0,
                                double ci, const NewtonOptions& options,
                                double gmin,
                                const std::vector<std::pair<int, double>>& pins) {
  const std::size_t nodes = ws.circuit_->num_nodes();
  SolverStats& st = ws.stats_;
  const bool sparse = ws.use_sparse_;

  // ---- Linear base for this solve. The Jacobian part depends only on
  // (a0, ci, gmin, pins) and is reused across solves via memcpy; the
  // residual offset f_lin(0) depends on time and companion history, so
  // it is rebuilt once per solve (with the Jacobian stamps discarded on
  // cache hits). The sparse path replays the recorded linear program —
  // picked by a0 == 0, since charge branches drop out of the DC program
  // — through its resolved slot pointers.
  const bool jac_cached = options.cache_linear_stamps && ws.base_valid_ &&
                          ws.base_a0_ == a0 && ws.base_ci_ == ci &&
                          ws.base_gmin_ == gmin && !ws.base_had_pins_ &&
                          pins.empty();
  std::fill(ws.base_res_.begin(), ws.base_res_.end(), 0.0);
  const std::size_t lin_count =
      a0 == 0.0 ? ws.sp_lin_dc_count_ : ws.sp_lin_tr_count_;
  LoadContext base_ctx;
  base_ctx.time = time;
  base_ctx.a0 = a0;
  base_ctx.ci = ci;
  base_ctx.x = ws.zero_x_;
  base_ctx.residual = &ws.base_res_;
  base_ctx.scope = LoadScope::kLinear;
  base_ctx.jacobian = &ws.sp_sink_;
  if (jac_cached) {
    ws.sp_sink_.bind_discard();
    ++st.linear_cache_hits;
  } else if (sparse) {
    ws.sp_base_.set_zero();
    const auto& slots =
        a0 == 0.0 ? ws.sp_lin_dc_slots_ : ws.sp_lin_tr_slots_;
    ws.sp_sink_.bind_slots(slots.data(), slots.size());
  } else {
    ws.base_jac_.set_zero();
    ws.sp_sink_.bind_dense(&ws.base_jac_);
  }
  for (Device* device : ws.devices_) device->load(base_ctx);
  st.device_loads += ws.devices_.size();
  if (sparse && !jac_cached && ws.sp_sink_.cursor() != lin_count) {
    throw std::logic_error("sparse solve: linear stamp program desync");
  }
  if (!jac_cached) {
    if (sparse) {
      for (std::size_t i = 0; i < nodes; ++i) {
        *ws.sp_diag_slots_[i] += gmin;
      }
      for (const auto& [node, value] : pins) {
        (void)value;
        if (node >= 0) {
          *ws.sp_diag_slots_[static_cast<std::size_t>(node)] += 1.0;
        }
      }
    } else {
      for (std::size_t i = 0; i < nodes; ++i) ws.base_jac_.at(i, i) += gmin;
      for (const auto& [node, value] : pins) {
        (void)value;
        if (node < 0) continue;
        const auto i = static_cast<std::size_t>(node);
        ws.base_jac_.at(i, i) += 1.0;
      }
    }
    ws.base_valid_ = true;
    ws.base_a0_ = a0;
    ws.base_ci_ = ci;
    ws.base_gmin_ = gmin;
    ws.base_had_pins_ = !pins.empty();
    // A rebuilt base (new a0/gmin/pins) rewrites linear values across the
    // whole matrix: every factor row is potentially dirty.
    ws.ap_dirty_min_ = 0;
  }
  // Pin residual offset: 1 S · (x - value) has constant part -value.
  for (const auto& [node, value] : pins) {
    if (node >= 0) ws.base_res_[static_cast<std::size_t>(node)] -= value;
  }
}

void NewtonDriver::assemble_linear(NewtonWorkspace& ws,
                                   std::span<const double> x) {
  const std::size_t n = ws.n_;
  // residual = f_lin(0) + A_lin·x, then the nonlinear stamps on top of
  // a copy of the cached base Jacobian — a fused row-wise memcpy +
  // matvec on the dense path, a CSR value memcpy + sparse matvec on
  // the sparse one.
  if (ws.use_sparse_) {
    ws.sp_jac_.copy_values_from(ws.sp_base_);
    const auto& row_ptr = ws.sp_jac_.row_ptr();
    const auto& cols = ws.sp_jac_.cols();
    const auto& vals = ws.sp_jac_.values();
    for (std::size_t i = 0; i < n; ++i) {
      double acc = ws.base_res_[i];
      const auto row_end = static_cast<std::size_t>(row_ptr[i + 1]);
      for (auto k = static_cast<std::size_t>(row_ptr[i]); k < row_end;
           ++k) {
        acc += vals[k] * x[static_cast<std::size_t>(cols[k])];
      }
      ws.residual_[i] = acc;
    }
    ws.sp_sink_.bind_slots(ws.sp_nl_slots_.data(),
                           ws.sp_nl_slots_.size());
  } else {
    const double* base = ws.base_jac_.data();
    double* jac = ws.jacobian_.data();
    for (std::size_t i = 0; i < n; ++i) {
      const double* row = base + i * n;
      double* jrow = jac + i * n;
      double acc = ws.base_res_[i];
      for (std::size_t j = 0; j < n; ++j) {
        const double v = row[j];
        jrow[j] = v;
        acc += v * x[j];
      }
      ws.residual_[i] = acc;
    }
    ws.sp_sink_.bind_dense(&ws.jacobian_);
  }
}

LoadContext NewtonDriver::nonlinear_context(NewtonWorkspace& ws,
                                            std::span<const double> x,
                                            double time, double a0,
                                            double ci) {
  LoadContext ctx;
  ctx.time = time;
  ctx.a0 = a0;
  ctx.ci = ci;
  ctx.jacobian = &ws.sp_sink_;
  ctx.residual = &ws.residual_;
  ctx.x = x;
  ctx.scope = LoadScope::kNonlinear;
  return ctx;
}

void NewtonDriver::stamp_nonlinear_partitioned(NewtonWorkspace& ws,
                                               std::span<const double> x,
                                               LoadContext& ctx) {
  SolverStats& st = ws.stats_;
  std::size_t loads = 0;
  bool static_dirty = false;
  const std::size_t count = ws.nonlinear_devices_.size();
  for (std::size_t i = 0; i < count; ++i) {
    Device* device = ws.nonlinear_devices_[i];
    const std::size_t pb = ws.ap_prog_begin_[i];
    const std::size_t pe = ws.ap_prog_end_[i];
    if (ws.ap_elidable_[i]) {
      const std::size_t ib = ws.ap_input_begin_[i];
      const std::size_t ie = ws.ap_input_begin_[i + 1];
      // Replay only if every input voltage is within tolerance of the
      // cached evaluation point. tolerance == 0 demands bitwise-equal
      // inputs (the !(diff <= 0) form also rejects NaN), which is what
      // makes the elided solve bit-identical to the unpartitioned one.
      bool replay = ws.ap_valid_[i] != 0;
      for (std::size_t k = ib; replay && k < ie; ++k) {
        const double v = x[static_cast<std::size_t>(ws.ap_input_nodes_[k])];
        if (!(std::abs(v - ws.ap_key_[k]) <= ws.ap_tol_)) replay = false;
      }
      if (replay) {
        ++st.ap_elided_loads;
        for (std::size_t k = pb; k < pe; ++k) {
          *ws.sp_nl_slots_[k] += ws.ap_jac_cache_[k];
        }
        for (std::size_t k = ib; k < ie; ++k) {
          ws.residual_[static_cast<std::size_t>(ws.ap_input_nodes_[k])] +=
              ws.ap_res_cache_[k];
        }
        continue;
      }
      // Real evaluation with capture: Jacobian adds are mirrored into
      // ap_jac_cache_ by the sink; the residual adds land in the zeroed
      // scratch vector (one add per input node by the nonlinear_inputs
      // contract), are recorded, then applied to the true residual with
      // the same `+=` the direct path would have executed.
      for (std::size_t k = ib; k < ie; ++k) {
        ws.ap_key_[k] = x[static_cast<std::size_t>(ws.ap_input_nodes_[k])];
      }
      ws.sp_sink_.bind_slots_capture(ws.sp_nl_slots_.data() + pb, pe - pb,
                                     ws.ap_jac_cache_.data() + pb);
      ctx.residual = &ws.ap_scratch_res_;
      device->load(ctx);
      if (ws.sp_sink_.cursor() != pe - pb) {
        throw std::logic_error(
            "sparse solve: partitioned nonlinear stamp program desync");
      }
      for (std::size_t k = ib; k < ie; ++k) {
        const auto node = static_cast<std::size_t>(ws.ap_input_nodes_[k]);
        const double v = ws.ap_scratch_res_[node];
        ws.ap_res_cache_[k] = v;
        ws.residual_[node] += v;
        ws.ap_scratch_res_[node] = 0.0;
      }
      ctx.residual = &ws.residual_;
      ws.ap_valid_[i] = 1;
      ++loads;
      if (ws.ap_floors_valid_) {
        ws.ap_dirty_min_ = std::min(ws.ap_dirty_min_, ws.ap_row_floor_[i]);
      } else {
        ws.ap_dirty_min_ = 0;
      }
    } else {
      ws.sp_sink_.bind_slots(ws.sp_nl_slots_.data() + pb, pe - pb);
      device->load(ctx);
      if (ws.sp_sink_.cursor() != pe - pb) {
        throw std::logic_error(
            "sparse solve: partitioned nonlinear stamp program desync");
      }
      ++loads;
      static_dirty = true;
    }
  }
  st.device_loads += loads;
  if (static_dirty) {
    ws.ap_dirty_min_ = ws.ap_floors_valid_
                           ? std::min(ws.ap_dirty_min_, ws.ap_static_floor_)
                           : 0;
  }
}

void NewtonDriver::recompute_ap_floors(NewtonWorkspace& ws) {
  if (ws.ap_mode_ == ActivityMode::kOff) return;
  const std::size_t n = ws.n_;
  const std::size_t count = ws.nonlinear_devices_.size();
  ws.ap_row_floor_.assign(count, n);
  ws.ap_static_floor_ = n;
  // Nonlinear stamp coordinates sit after the two linear programs in
  // sp_coords_; translate each device's stamped rows through the fresh
  // row permutation and keep the minimum.
  const std::size_t offset = ws.sp_lin_tr_count_ + ws.sp_lin_dc_count_;
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t floor = n;
    for (std::size_t k = ws.ap_prog_begin_[i]; k < ws.ap_prog_end_[i]; ++k) {
      const auto row =
          static_cast<std::size_t>(ws.sp_coords_[offset + k].first);
      floor = std::min(floor, ws.sp_lu_.permuted_row(row));
    }
    ws.ap_row_floor_[i] = floor;
    if (!ws.ap_elidable_[i]) {
      ws.ap_static_floor_ = std::min(ws.ap_static_floor_, floor);
    }
  }
  ws.ap_floors_valid_ = true;
}

IterationResult NewtonDriver::finish_iteration(NewtonWorkspace& ws,
                                               std::vector<double>& x,
                                               const NewtonOptions& options,
                                               int iter, double& prev_scaled) {
  const std::size_t n = ws.n_;
  const std::size_t nodes = ws.circuit_->num_nodes();
  SolverStats& st = ws.stats_;
  const bool sparse = ws.use_sparse_;
  IterationResult result;

  // Residual norms: node rows are KCL sums (amperes), branch rows are
  // source voltage equations (volts) — both must be checked, each
  // against its own tolerance (a branch current can be arbitrarily
  // wrong while every node row looks converged).
  double max_residual = 0.0;
  for (std::size_t i = 0; i < nodes; ++i) {
    max_residual = std::max(max_residual, std::abs(ws.residual_[i]));
  }
  double max_branch_residual = 0.0;
  for (std::size_t i = nodes; i < n; ++i) {
    max_branch_residual =
        std::max(max_branch_residual, std::abs(ws.residual_[i]));
  }
  const double scaled = std::max(max_residual / options.abstol,
                                 max_branch_residual / options.vntol);

  // Residual-history judge for the modified-Newton bypass: score each
  // bypassed iteration by whether the residual actually contracted.
  // Workloads whose residual stalls under a stale factorization (seen on
  // the coupled RTN workload) rack up "bad" bypasses and pay extra
  // Newton iterations; once bad exceeds good by a margin, disable the
  // bypass for the remainder of this attach.
  if (ws.last_iter_bypassed_) {
    const bool contracted = scaled < options.bypass_contraction * prev_scaled;
    if (contracted) {
      ++ws.bypass_good_;
    } else {
      ++ws.bypass_bad_;
    }
    if (ws.bypass_bad_ > ws.bypass_good_ + 3) ws.bypass_enabled_ = false;
  }

  // Modified-Newton bypass: within a solve, re-solve against the stale
  // factorization while the scaled residual keeps contracting;
  // refactorize on stall. The first iteration always factors: across
  // steps the companion coefficient a0 = O(1/h) rescales the capacitive
  // Jacobian block, so a stale cross-step factorization degrades
  // Newton to slow linear convergence and costs far more in extra
  // MOSFET evaluations than the O(n^3) factorization it saves.
  const bool bypass = options.reuse_lu && ws.bypass_enabled_ &&
                      ws.lu_valid_ && iter > 0 &&
                      scaled < options.bypass_contraction * prev_scaled;
  ws.last_iter_bypassed_ = bypass;
  if (!bypass) {
    ++st.lu_factorizations;
    if (sparse) {
      // The sparse engine reuses its symbolic analysis (pivot order +
      // fill pattern) and only redoes the O(fill-nnz) numeric sweep;
      // was_analysis reports the rare full re-analyses. When the
      // activity partition is on, rows above the dirty floor are
      // bit-unchanged since the last successful factor, so the numeric
      // sweep restarts mid-matrix (partial refactor).
      const bool partitioned = ws.ap_mode_ != ActivityMode::kOff;
      const std::size_t floor = partitioned ? ws.ap_dirty_min_ : 0;
      bool was_analysis = false;
      if (!ws.sp_lu_.factor(ws.sp_jac_, ws.sp_jac_.value_max_abs(),
                            &was_analysis, floor)) {
        ws.lu_valid_ = false;
        result.singular = true;
        return result;
      }
      if (was_analysis) {
        ++st.sp_symbolic_analyses;
        if (partitioned) recompute_ap_floors(ws);
      } else {
        ++st.sp_numeric_refactors;
        if (partitioned && floor > 0) {
          ++st.ap_partial_refactors;
          st.ap_rows_skipped += floor;
        }
      }
      if (partitioned) ws.ap_dirty_min_ = n;
    } else {
      // Fused copy + scan: max|J| feeds lu_factor's scale-relative
      // pivot threshold without a second pass over the matrix.
      const double* src = ws.jacobian_.data();
      double* dst = ws.lu_.data();
      double jac_scale = 0.0;
      for (std::size_t k = 0; k < n * n; ++k) {
        const double v = src[k];
        dst[k] = v;
        jac_scale = std::max(jac_scale, std::abs(v));
      }
      if (!lu_factor(ws.lu_, ws.pivots_, jac_scale)) {
        ws.lu_valid_ = false;
        result.singular = true;
        return result;
      }
    }
    ws.lu_valid_ = true;
  } else {
    ++st.bypass_hits;
  }
  prev_scaled = scaled;
  std::copy(ws.residual_.begin(), ws.residual_.end(), ws.delta_.begin());
  if (sparse) {
    ws.sp_lu_.solve(ws.delta_);
    ++st.sp_solves;
  } else {
    lu_solve_factored(ws.lu_, ws.pivots_, ws.delta_);
  }
  ++st.lu_solves;
  // Damp: clamp the largest node-voltage update. Branch-current rows
  // get a relative+absolute convergence check of their own.
  double max_dv = 0.0;
  for (std::size_t i = 0; i < nodes; ++i) {
    max_dv = std::max(max_dv, std::abs(ws.delta_[i]));
  }
  double max_di = 0.0;
  double max_i = 0.0;
  for (std::size_t i = nodes; i < n; ++i) {
    max_di = std::max(max_di, std::abs(ws.delta_[i]));
    max_i = std::max(max_i, std::abs(x[i]));
  }
  const double damp =
      max_dv > options.dv_limit ? options.dv_limit / max_dv : 1.0;
  for (std::size_t i = 0; i < n; ++i) x[i] -= damp * ws.delta_[i];

  const double itol = options.abstol + options.reltol * max_i;
  if (damp == 1.0 && max_dv < options.vntol && max_di < itol &&
      max_residual < options.abstol &&
      max_branch_residual < options.vntol) {
    result.converged = true;
  }
  return result;
}

NewtonOutcome NewtonDriver::solve(NewtonWorkspace& ws, std::vector<double>& x,
                                  double time, double a0, double ci,
                                  const NewtonOptions& options, double gmin,
                                  const std::vector<std::pair<int, double>>& pins) {
  SolverStats& st = ws.stats_;
  prepare_base(ws, time, a0, ci, options, gmin, pins);

  NewtonOutcome outcome;
  double prev_scaled = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    outcome.iterations = iter + 1;
    ++st.newton_iterations;

    assemble_linear(ws, x);
    LoadContext ctx = nonlinear_context(ws, x, time, a0, ci);
    if (ws.use_sparse_ && ws.ap_mode_ != ActivityMode::kOff) {
      stamp_nonlinear_partitioned(ws, x, ctx);
    } else {
      for (Device* device : ws.nonlinear_devices_) device->load(ctx);
      st.device_loads += ws.nonlinear_devices_.size();
      if (ws.use_sparse_ && ws.sp_sink_.cursor() != ws.sp_nl_count_) {
        throw std::logic_error("sparse solve: nonlinear stamp program desync");
      }
    }

    const IterationResult r = finish_iteration(ws, x, options, iter,
                                               prev_scaled);
    if (r.singular) return outcome;
    if (r.converged) {
      outcome.converged = true;
      return outcome;
    }
  }
  return outcome;
}

std::vector<std::pair<int, double>> NewtonDriver::resolve_pins(
    Circuit& circuit, const std::map<std::string, double>& nodeset) {
  std::vector<std::pair<int, double>> pins;
  pins.reserve(nodeset.size());
  for (const auto& [name, value] : nodeset) {
    pins.emplace_back(circuit.find_node(name), value);
  }
  return pins;
}

DcResult NewtonDriver::dc(NewtonWorkspace& ws, Circuit& circuit,
                          const DcOptions& options) {
  DcResult result;
  result.x.assign(circuit.system_size(), 0.0);
  const auto pins = resolve_pins(circuit, options.nodeset);

  // Phase 1: solve with nodeset pins engaged (if any).
  if (!pins.empty()) {
    for (const auto& [node, value] : pins) {
      if (node >= 0) result.x[static_cast<std::size_t>(node)] = value;
    }
    solve(ws, result.x, 0.0, 0.0, 0.0, options.newton,
          std::max(options.gmin, 1e-9), pins);
  }

  // Phase 2: plain Newton; on failure, gmin-step from 1e-2 down.
  auto outcome = solve(ws, result.x, 0.0, 0.0, 0.0, options.newton,
                       options.gmin, {});
  if (!outcome.converged) {
    std::vector<double> x = result.x;
    bool ladder_ok = true;
    for (double gmin = 1e-2; gmin >= options.gmin; gmin *= 0.1) {
      const auto step =
          solve(ws, x, 0.0, 0.0, 0.0, options.newton, gmin, pins);
      if (!step.converged) {
        ladder_ok = false;
        break;
      }
    }
    if (ladder_ok) {
      outcome = solve(ws, x, 0.0, 0.0, 0.0, options.newton, options.gmin, {});
      if (outcome.converged) result.x = x;
    }
  }
  result.converged = outcome.converged;
  result.iterations = outcome.iterations;
  return result;
}

}  // namespace detail

DcResult dc_operating_point(Circuit& circuit, const DcOptions& options) {
  NewtonWorkspace workspace;
  workspace.attach(circuit, options.solver);
  DcResult result = detail::NewtonDriver::dc(workspace, circuit, options);
  result.stats = workspace.stats();
  detail::solver_stats_accumulate(result.stats);
  return result;
}

// ---------------------------------------------------------------- results

TransientResult::TransientResult(std::vector<std::string> node_names)
    : names_(std::move(node_names)), samples_(names_.size()) {}

void TransientResult::record(double t, std::span<const double> x,
                             std::size_t num_nodes) {
  times_.push_back(t);
  for (std::size_t i = 0; i < num_nodes && i < samples_.size(); ++i) {
    samples_[i].push_back(x[i]);
  }
}

void TransientResult::reserve(std::size_t points) {
  times_.reserve(points);
  for (auto& samples : samples_) samples.reserve(points);
}

std::size_t TransientResult::node_index(const std::string& node) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == node) return i;
  }
  throw std::invalid_argument("TransientResult: unknown node " + node);
}

const std::vector<double>& TransientResult::voltage_samples(
    const std::string& node) const {
  return samples_[node_index(node)];
}

core::Pwl TransientResult::voltage(const std::string& node) const {
  return core::Pwl(times_, samples_[node_index(node)]);
}

double TransientResult::voltage_at(const std::string& node, double t) const {
  return util::interp_linear(times_, samples_[node_index(node)], t);
}

core::Pwl TransientResult::voltage_between(const std::string& a,
                                           const std::string& b) const {
  const bool a_gnd = (a == "0" || a == "gnd" || a == "GND");
  const bool b_gnd = (b == "0" || b == "gnd" || b == "GND");
  std::vector<double> values(times_.size(), 0.0);
  if (!a_gnd) {
    const auto& va = samples_[node_index(a)];
    for (std::size_t i = 0; i < values.size(); ++i) values[i] += va[i];
  }
  if (!b_gnd) {
    const auto& vb = samples_[node_index(b)];
    for (std::size_t i = 0; i < values.size(); ++i) values[i] -= vb[i];
  }
  return core::Pwl(times_, std::move(values));
}

// --------------------------------------------------------------- transient

namespace detail {

std::vector<double> NewtonDriver::collect_breakpoints(
    Circuit& circuit, const TransientOptions& options) {
  const double span = options.t_stop - options.t_start;
  // Breakpoints: source corners + caller extras, clipped to the window.
  std::vector<double> breakpoints = options.extra_breakpoints;
  for (const auto& device : circuit.devices()) {
    device->collect_breakpoints(breakpoints);
  }
  breakpoints.push_back(options.t_stop);
  std::sort(breakpoints.begin(), breakpoints.end());
  breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end(),
                                [&](double a, double b) {
                                  return std::abs(a - b) < span * 1e-12;
                                }),
                    breakpoints.end());
  return breakpoints;
}

std::vector<GridStep> NewtonDriver::plan_fixed_grid(
    const TransientOptions& options, double dt_max,
    std::span<const double> breakpoints) {
  const double span = options.t_stop - options.t_start;
  std::vector<GridStep> plan;
  plan.reserve(static_cast<std::size_t>(span / dt_max) + breakpoints.size() +
               2);
  double t = options.t_start;
  bool after_discontinuity = true;  // force BE on the first step
  std::size_t bp_index = 0;
  while (bp_index < breakpoints.size() &&
         breakpoints[bp_index] <= t + span * 1e-12) {
    ++bp_index;
  }
  while (t < options.t_stop - span * 1e-12) {
    bool hit_breakpoint = false;
    double step = dt_max;
    if (bp_index < breakpoints.size()) {
      const double to_bp = breakpoints[bp_index] - t;
      if (step >= to_bp - options.dt_min) {
        step = to_bp;
        hit_breakpoint = true;
      }
    }
    if (t + step > options.t_stop) step = options.t_stop - t;
    if (!(step > 0.0)) {
      throw std::runtime_error("transient: fixed-grid step underflow");
    }
    const bool use_be = after_discontinuity ||
                        options.method == IntegrationMethod::kBackwardEuler;
    t += step;
    plan.push_back(GridStep{t, step, use_be, hit_breakpoint});
    after_discontinuity = hit_breakpoint;
    if (hit_breakpoint) ++bp_index;
  }
  return plan;
}

TransientResult NewtonDriver::run_transient(Circuit& circuit,
                                            const TransientOptions& options,
                                            NewtonWorkspace& ws) {
  if (!(options.t_stop > options.t_start)) {
    throw std::invalid_argument("transient: t_stop <= t_start");
  }
  const SolverStats stats_before = ws.stats_;
  ws.attach(circuit, options.solver, &options.activity);
  SolverStats& st = ws.stats_;

  const std::size_t nodes = circuit.num_nodes();
  const double span = options.t_stop - options.t_start;
  const double dt_max = options.dt_max > 0.0 ? options.dt_max : span / 200.0;

  // Initial operating point at t_start.
  auto dc_result = detail::NewtonDriver::dc(ws, circuit, options.dc);
  if (!dc_result.converged) {
    throw std::runtime_error("transient: DC operating point did not converge");
  }
  std::vector<double> x = dc_result.x;
  for (auto& device : circuit.devices()) device->reset_history();
  for (auto& device : circuit.devices()) device->commit(x, 0.0, 0.0);

  const std::vector<double> breakpoints = collect_breakpoints(circuit, options);

  TransientResult result(circuit.node_names());

  if (options.fixed_grid) {
    // Fixed-grid mode: the step sequence is planned up front (identical
    // for any run with the same options — the batched engine's lock-step
    // contract), Newton failures throw instead of rejecting, and the LTE
    // machinery is skipped entirely.
    const auto plan = plan_fixed_grid(options, dt_max, breakpoints);
    result.reserve(plan.size() + 1);
    result.record(options.t_start, x, nodes);
    std::vector<double>& x_prev = ws.x_prev_;
    std::vector<double>& x_pred = ws.x_pred_;
    std::vector<double>& x_new = ws.x_new_;
    x_prev = x;
    double dt_prev = 0.0;
    bool after_discontinuity = true;
    for (const GridStep& gs : plan) {
      const double a0 = gs.use_be ? 1.0 / gs.step : 2.0 / gs.step;
      const double ci = gs.use_be ? 0.0 : -1.0;
      const bool have_predictor = dt_prev > 0.0 && !after_discontinuity;
      x_new = x;
      if (have_predictor) {
        for (std::size_t i = 0; i < x.size(); ++i) {
          x_pred[i] = x[i] + (x[i] - x_prev[i]) * (gs.step / dt_prev);
          x_new[i] = x_pred[i];
        }
      }
      const auto outcome = solve(ws, x_new, gs.t_next, a0, ci, options.newton,
                                 options.dc.gmin, {});
      if (!outcome.converged) {
        throw std::runtime_error(
            "transient: Newton did not converge on the fixed grid at t=" +
            std::to_string(gs.t_next));
      }
      ++st.steps_accepted;
      for (auto& device : circuit.devices()) device->commit(x_new, a0, ci);
      x_prev = x;
      x.swap(x_new);
      dt_prev = gs.step;
      result.record(gs.t_next, x, nodes);
      if (options.on_step) options.on_step(gs.t_next, x);
      after_discontinuity = gs.hit_breakpoint;
    }
    ++st.transients;
    const SolverStats delta = ws.stats_.since(stats_before);
    result.set_stats(delta);
    solver_stats_accumulate(delta);
    return result;
  }

  result.record(options.t_start, x, nodes);

  double t = options.t_start;
  double dt = std::min(options.dt_initial, dt_max);
  double dt_prev = 0.0;
  bool after_discontinuity = true;  // force BE on the first step

  std::size_t bp_index = 0;
  while (bp_index < breakpoints.size() && breakpoints[bp_index] <= t + span * 1e-12) {
    ++bp_index;
  }

  const int max_rejects = 60;
  int rejects = 0;
  // Steady-state loop: every buffer below belongs to the workspace or was
  // sized before the loop — zero heap allocations per step (asserted via
  // stats().workspace_allocations).
  std::vector<double>& x_prev = ws.x_prev_;  // solution at t - dt_prev
  std::vector<double>& x_pred = ws.x_pred_;
  std::vector<double>& x_new = ws.x_new_;
  x_prev = x;
  while (t < options.t_stop - span * 1e-12) {
    bool hit_breakpoint = false;
    double step = std::min(dt, dt_max);
    if (bp_index < breakpoints.size()) {
      const double to_bp = breakpoints[bp_index] - t;
      if (step >= to_bp - options.dt_min) {
        step = to_bp;
        hit_breakpoint = true;
      }
    }
    if (t + step > options.t_stop) step = options.t_stop - t;

    const bool use_be = after_discontinuity ||
                        options.method == IntegrationMethod::kBackwardEuler;
    const double a0 = use_be ? 1.0 / step : 2.0 / step;
    const double ci = use_be ? 0.0 : -1.0;

    // Predictor: linear extrapolation (also the warm start).
    const bool have_predictor = dt_prev > 0.0 && !after_discontinuity;
    x_new = x;
    if (have_predictor) {
      for (std::size_t i = 0; i < x.size(); ++i) {
        x_pred[i] = x[i] + (x[i] - x_prev[i]) * (step / dt_prev);
        x_new[i] = x_pred[i];
      }
    }

    const auto outcome = detail::NewtonDriver::solve(
        ws, x_new, t + step, a0, ci, options.newton, options.dc.gmin, {});
    bool accept = outcome.converged;
    double err_ratio = 0.0;
    if (accept && have_predictor) {
      for (std::size_t i = 0; i < nodes; ++i) {
        const double tol = options.lte_reltol *
                               std::max(std::abs(x_new[i]), std::abs(x[i])) +
                           options.lte_abstol;
        err_ratio = std::max(err_ratio, std::abs(x_new[i] - x_pred[i]) / tol);
      }
      if (err_ratio > 10.0 && step > 4.0 * options.dt_min && !hit_breakpoint) {
        accept = false;
      }
    }

    if (!accept) {
      ++st.steps_rejected;
      ws.lu_valid_ = false;  // retry with a fresh factorization
      if (++rejects > max_rejects || step <= 2.0 * options.dt_min) {
        throw std::runtime_error("transient: step size underflow at t=" +
                                 std::to_string(t));
      }
      dt = step / 4.0;
      continue;
    }
    rejects = 0;
    ++st.steps_accepted;

    for (auto& device : circuit.devices()) device->commit(x_new, a0, ci);
    x_prev = x;
    x.swap(x_new);
    dt_prev = step;
    t += step;
    result.record(t, x, nodes);
    if (options.on_step) options.on_step(t, x);

    after_discontinuity = hit_breakpoint;
    if (hit_breakpoint) ++bp_index;

    // Step-size controller from the predictor/corrector difference.
    double grow = 1.5;
    if (have_predictor && err_ratio > 0.0) {
      grow = std::clamp(std::sqrt(1.0 / err_ratio), 0.3, 2.0);
    }
    dt = std::clamp(step * grow, options.dt_min, dt_max);
  }
  ++st.transients;
  const SolverStats delta = ws.stats_.since(stats_before);
  result.set_stats(delta);
  solver_stats_accumulate(delta);
  return result;
}

}  // namespace detail

TransientResult transient(Circuit& circuit, const TransientOptions& options) {
  NewtonWorkspace workspace;
  return detail::NewtonDriver::run_transient(circuit, options, workspace);
}

TransientResult transient(Circuit& circuit, const TransientOptions& options,
                          NewtonWorkspace& workspace) {
  return detail::NewtonDriver::run_transient(circuit, options, workspace);
}

}  // namespace samurai::spice
