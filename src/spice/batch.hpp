// Batched Monte-Carlo transient engine: march K same-topology circuits
// ("lanes") through one fixed-grid transient in lock-step.
//
// A yield campaign re-runs the same cell topology and drive pattern with
// per-sample threshold-voltage draws, so the K transients share their
// breakpoints, their step plan and — on the sparse engine — one symbolic
// LU analysis; only the MOSFET operating points and the linear algebra
// differ per lane. The engine plans the fixed grid once, evaluates every
// lane's MOSFET channels through one structure-of-arrays sweep
// (physics::MosBatch) per Newton iteration, and retires lanes from the
// iteration as they converge. Each lane executes exactly the scalar
// fixed-grid step/iteration sequence, so lane k of a batch reproduces an
// independent scalar run of circuit k bit-for-bit on the dense engine
// (and to Newton tolerance on the sparse one, where the adopted pivot
// order may differ from the lane's own analysis). See DESIGN.md §13.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "physics/mos_device.hpp"
#include "spice/analysis.hpp"

namespace samurai::spice {

/// Reusable scratch for transient_batch: per-lane Newton workspaces plus
/// the SoA MOSFET evaluators and lane bookkeeping. Reusing one workspace
/// across batches of the same shape keeps the steady state allocation-free
/// (same contract as NewtonWorkspace).
class BatchWorkspace {
 public:
  BatchWorkspace() = default;

  /// Lanes bound by the last transient_batch call.
  std::size_t lanes() const noexcept { return lanes_.size(); }

 private:
  friend struct detail::NewtonDriver;

  std::vector<NewtonWorkspace> lanes_;     ///< one scalar workspace per lane
  std::vector<std::vector<double>> x_;     ///< per-lane accepted solution
  std::vector<physics::MosBatch> slots_;   ///< per MOSFET slot, SoA over lanes
  std::vector<std::size_t> active_;        ///< unconverged lane ids
  std::vector<std::size_t> next_active_;
  std::vector<double> prev_scaled_;        ///< per-lane Newton contraction
};

/// Run the transient of every circuit in `circuits` in lock-step on the
/// shared fixed grid (union of all lanes' breakpoints). Requires
/// `options.fixed_grid`; `on_step` is unsupported (lanes advance
/// together, not one at a time). All circuits must share one topology —
/// system size, node count and MOSFET terminal wiring — and every
/// nonlinear device must be a Mosfet. Results are index-aligned with
/// `circuits`; each carries its lane's solver-stats delta, and the
/// process-wide stats additionally record the bt_* batched-engine
/// counters.
std::vector<TransientResult> transient_batch(std::span<Circuit* const> circuits,
                                             const TransientOptions& options,
                                             BatchWorkspace& workspace);

/// Convenience overload with a throwaway workspace.
std::vector<TransientResult> transient_batch(std::span<Circuit* const> circuits,
                                             const TransientOptions& options);

}  // namespace samurai::spice
