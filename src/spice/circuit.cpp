#include "spice/circuit.hpp"

#include <stdexcept>

namespace samurai::spice {

void Device::commit(std::span<const double>, double, double) {}
void Device::reset_history() {}
void Device::collect_breakpoints(std::vector<double>&) const {}

int Circuit::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  const auto it = node_ids_.find(name);
  if (it != node_ids_.end()) return it->second;
  const int id = static_cast<int>(node_names_.size());
  node_ids_.emplace(name, id);
  node_names_.push_back(name);
  return id;
}

int Circuit::alloc_branch() {
  return static_cast<int>(num_branches_++);
}

int Circuit::find_node(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  const auto it = node_ids_.find(name);
  if (it == node_ids_.end()) {
    throw std::invalid_argument("Circuit: unknown node " + name);
  }
  return it->second;
}

}  // namespace samurai::spice
