// Internal Newton/transient driver shared by the scalar analyses
// (analysis.cpp) and the batched fixed-grid engine (batch.cpp). Not part
// of the public API: include only from src/spice translation units.
//
// The driver is decomposed into per-iteration pieces so the batched
// engine can interleave K lanes — prepare_base once per solve, then per
// Newton iteration assemble_linear → nonlinear stamps → finish_iteration
// — while every lane's floating-point sequence stays identical to the
// scalar solve() that composes the same pieces.
#pragma once

#include <map>
#include <span>
#include <utility>
#include <vector>

#include "spice/analysis.hpp"

namespace samurai::spice {
class BatchWorkspace;  // spice/batch.hpp
}  // namespace samurai::spice

namespace samurai::spice::detail {

struct NewtonOutcome {
  bool converged = false;
  int iterations = 0;
};

/// Outcome of one Newton iteration's linear-algebra half.
struct IterationResult {
  bool converged = false;
  bool singular = false;
};

/// One planned fixed-grid step (see NewtonDriver::plan_fixed_grid).
struct GridStep {
  double t_next = 0.0;  ///< time after the step (use verbatim, no resum)
  double step = 0.0;    ///< step size h
  bool use_be = false;  ///< backward Euler (first step / post-breakpoint)
  bool hit_breakpoint = false;
};

struct NewtonDriver {
  /// One Newton solve of the MNA system at fixed (time, a0, ci),
  /// warm-started from and returning in `x`. `pins` adds a 1 S conductance
  /// from node id to a target voltage (nodeset); `gmin` leaks every node
  /// to ground. Allocation-free given an attached workspace.
  static NewtonOutcome solve(NewtonWorkspace& ws, std::vector<double>& x,
                             double time, double a0, double ci,
                             const NewtonOptions& options, double gmin,
                             const std::vector<std::pair<int, double>>& pins);

  /// Build (or cache-hit) the linear base Jacobian and the residual offset
  /// f_lin(0) for one solve at (time, a0, ci, gmin, pins).
  static void prepare_base(NewtonWorkspace& ws, double time, double a0,
                           double ci, const NewtonOptions& options,
                           double gmin,
                           const std::vector<std::pair<int, double>>& pins);

  /// Restore the base Jacobian into the iteration Jacobian, compute
  /// residual = f_lin(0) + A_lin·x, and bind the workspace sink for the
  /// nonlinear stamps that must follow.
  static void assemble_linear(NewtonWorkspace& ws, std::span<const double> x);

  /// The nonlinear LoadContext matching assemble_linear's sink binding.
  static LoadContext nonlinear_context(NewtonWorkspace& ws,
                                       std::span<const double> x, double time,
                                       double a0, double ci);

  /// Activity-partitioned replacement for the plain nonlinear device
  /// loop (sparse path, ap_mode_ != kOff): quiescent devices whose input
  /// voltages are within tolerance of their cached evaluation replay the
  /// cached Jacobian/residual stamps; everything else is loaded for real
  /// (with the stamps captured for next time) and lowers the
  /// partial-refactor dirty floor.
  static void stamp_nonlinear_partitioned(NewtonWorkspace& ws,
                                          std::span<const double> x,
                                          LoadContext& ctx);

  /// Recompute the per-device permuted-row floors after a fresh symbolic
  /// analysis (the permutation they translate through just changed).
  static void recompute_ap_floors(NewtonWorkspace& ws);

  /// Residual norms → factor-or-bypass → triangular solve → damped update
  /// → convergence test. `prev_scaled` carries the modified-Newton
  /// contraction state across iterations of one solve.
  static IterationResult finish_iteration(NewtonWorkspace& ws,
                                          std::vector<double>& x,
                                          const NewtonOptions& options,
                                          int iter, double& prev_scaled);

  static std::vector<std::pair<int, double>> resolve_pins(
      Circuit& circuit, const std::map<std::string, double>& nodeset);

  /// DC operating point against an already-attached workspace.
  static DcResult dc(NewtonWorkspace& ws, Circuit& circuit,
                     const DcOptions& options);

  /// Breakpoints for a transient over [t_start, t_stop]: device corners +
  /// caller extras + t_stop, clipped to the window, sorted and deduped
  /// with the span-relative tolerance both drivers share.
  static std::vector<double> collect_breakpoints(
      Circuit& circuit, const TransientOptions& options);

  /// The deterministic fixed-grid step sequence: dt_max-sized steps
  /// clipped to each breakpoint and to t_stop, backward Euler after every
  /// discontinuity (and on the first step). The scalar fixed-grid
  /// transient and every batched lane execute exactly this plan, which is
  /// what makes their accepted-step sequences identical by construction.
  static std::vector<GridStep> plan_fixed_grid(
      const TransientOptions& options, double dt_max,
      std::span<const double> breakpoints);

  static TransientResult run_transient(Circuit& circuit,
                                       const TransientOptions& options,
                                       NewtonWorkspace& ws);

  /// The batched lock-step engine (defined in batch.cpp).
  static std::vector<TransientResult> run_transient_batch(
      std::span<Circuit* const> circuits, const TransientOptions& options,
      BatchWorkspace& workspace);
};

}  // namespace samurai::spice::detail
