#include "campaign/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace samurai::campaign {

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("campaign: cannot open " + tmp);
    out << content;
    out.flush();
    if (!out) throw std::runtime_error("campaign: short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("campaign: cannot rename " + tmp + " -> " + path);
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("campaign: cannot read " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void Checkpoint::init(const Manifest& manifest) const {
  std::filesystem::create_directories(dir_);
  if (has_ledger()) {
    throw std::runtime_error(
        "campaign: " + dir_ +
        " already holds a shard ledger; use resume (or a fresh directory)");
  }
  write_file_atomic(manifest_path(), manifest.to_json() + "\n");
}

bool Checkpoint::has_manifest() const {
  return std::filesystem::exists(manifest_path());
}

bool Checkpoint::has_ledger() const {
  return std::filesystem::exists(ledger_path());
}

Manifest Checkpoint::load_manifest() const {
  return Manifest::from_json(read_file(manifest_path()));
}

std::vector<ShardResult> Checkpoint::load_ledger() const {
  std::vector<ShardResult> shards;
  if (!has_ledger()) return shards;
  std::istringstream in(read_file(ledger_path()));
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    shards.push_back(ShardResult::from_json(line));
    if (shards.back().index + 1 != shards.size()) {
      throw std::runtime_error("campaign: ledger " + ledger_path() +
                               " is out of order at shard " +
                               std::to_string(shards.back().index));
    }
  }
  return shards;
}

void Checkpoint::store_ledger(const std::vector<ShardResult>& shards) const {
  std::string content;
  for (const auto& shard : shards) content += shard.to_json() + "\n";
  write_file_atomic(ledger_path(), content);
}

void Checkpoint::store_state(const std::string& state_json) const {
  write_file_atomic(state_path(), state_json + "\n");
}

std::string Checkpoint::load_state() const {
  if (!std::filesystem::exists(state_path())) return "";
  return read_file(state_path());
}

}  // namespace samurai::campaign
