#include "campaign/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/fs.hpp"

namespace samurai::campaign {

void write_file_atomic(const std::string& path, const std::string& content) {
  util::replace_file_durable(path, content);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("campaign: cannot read " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void Checkpoint::init(const Manifest& manifest) const {
  std::filesystem::create_directories(dir_);
  if (has_ledger()) {
    throw std::runtime_error(
        "campaign: " + dir_ +
        " already holds a shard ledger; use resume (or a fresh directory)");
  }
  write_file_atomic(manifest_path(), manifest.to_json() + "\n");
}

bool Checkpoint::has_manifest() const {
  return std::filesystem::exists(manifest_path());
}

bool Checkpoint::has_ledger() const {
  return std::filesystem::exists(ledger_path());
}

Manifest Checkpoint::load_manifest() const {
  return Manifest::from_json(read_file(manifest_path()));
}

std::vector<ShardResult> Checkpoint::load_ledger() const {
  std::vector<ShardResult> shards;
  if (!has_ledger()) return shards;
  const std::string text = read_file(ledger_path());

  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      // Unterminated tail: a writer died mid-append. The shard it was
      // recording counts as not-run and will be executed again; the next
      // append fences the fragment off with a newline.
      std::fprintf(stderr,
                   "campaign: ignoring torn trailing line in %s "
                   "(writer died mid-append; shard will be re-run)\n",
                   ledger_path().c_str());
      break;
    }
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;  // fence newline from a torn-tail repair
    try {
      // A torn line that a later append fenced off is a byte-wise *prefix*
      // of a record, so it can never end in the closing brace — the lenient
      // parser would otherwise accept the fragment's leading fields as a
      // (wrong) record. Demand the whole object.
      if (line.front() != '{' || line.back() != '}') {
        throw std::runtime_error("truncated shard record");
      }
      ShardResult shard = ShardResult::from_json(line);
      // A parseable object that lacks the shard fields is a fenced-off
      // fragment that happened to close as valid JSON — not a record.
      if (shard.samples == 0 && shard.fails.count == 0 &&
          shard.value.count == 0) {
        throw std::runtime_error("not a shard record");
      }
      shards.push_back(std::move(shard));
    } catch (const std::exception&) {
      std::fprintf(stderr,
                   "campaign: ignoring malformed line in %s "
                   "(torn write; shard will be re-run)\n",
                   ledger_path().c_str());
    }
  }

  // Worker processes append in completion order, not index order; the
  // fold contract is index order from shard 0, so sort here. Duplicate
  // indices (a reclaimed lease whose original owner also finished) keep
  // the first-appended line; both are bit-identical by the determinism
  // contract, so this is a tie-break, not a choice.
  std::stable_sort(shards.begin(), shards.end(),
                   [](const ShardResult& a, const ShardResult& b) {
                     return a.index < b.index;
                   });
  shards.erase(std::unique(shards.begin(), shards.end(),
                           [](const ShardResult& a, const ShardResult& b) {
                             return a.index == b.index;
                           }),
               shards.end());
  return shards;
}

void Checkpoint::append_ledger(const ShardResult& shard) const {
  util::append_line_durable(ledger_path(), shard.to_json());
}

void Checkpoint::store_state(const std::string& state_json) const {
  write_file_atomic(state_path(), state_json + "\n");
}

std::string Checkpoint::load_state() const {
  if (!std::filesystem::exists(state_path())) return "";
  return read_file(state_path());
}

}  // namespace samurai::campaign
