#include "campaign/service/lease.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "campaign/json.hpp"
#include "util/fs.hpp"

namespace samurai::campaign {

namespace {

/// Best-effort whole-file read: "" if the file vanished mid-read (a
/// release or steal racing us), which every caller treats as "not held".
std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

std::string Lease::to_json() const {
  JsonWriter json;
  json.add_u64("shard", shard);
  json.add("worker", worker);
  json.add("token", token);
  json.add_u64("heartbeats", heartbeats);
  json.add("claimed_unix", claimed_unix);
  return json.str();
}

Lease Lease::from_json(const std::string& text) {
  const JsonObject json = JsonObject::parse(text);
  if (!json.has("token") || !json.has("worker")) {
    throw std::runtime_error("lease: missing ownership fields");
  }
  Lease lease;
  lease.shard = json.get_u64("shard", 0);
  lease.worker = json.get_string("worker", "");
  lease.token = json.get_string("token", "");
  lease.heartbeats = json.get_u64("heartbeats", 0);
  lease.claimed_unix = json.get_double("claimed_unix", 0.0);
  return lease;
}

LeaseDir::LeaseDir(std::string campaign_dir, double ttl_seconds)
    : dir_(std::move(campaign_dir) + "/leases"), ttl_(ttl_seconds) {
  if (!(ttl_ > 0.0)) {
    throw std::invalid_argument("lease: ttl must be positive");
  }
  std::filesystem::create_directories(dir_);
}

std::string LeaseDir::path_for(std::uint64_t shard) const {
  char leaf[40];
  std::snprintf(leaf, sizeof leaf, "/shard-%08llu.lease",
                static_cast<unsigned long long>(shard));
  return dir_ + leaf;
}

bool LeaseDir::expired_by_age(const std::string& path) const {
  try {
    return util::file_age_seconds(path) > ttl_;
  } catch (const std::exception&) {
    return false;  // vanished: not expired, just gone
  }
}

bool LeaseDir::steal(const std::string& path) {
  // Rename-to-tombstone: of N processes that saw the lease expire, the
  // rename succeeds for exactly one; the losers see ENOENT and go back
  // to racing the O_EXCL create. The tombstone suffix keeps stolen files
  // out of observe()'s "*.lease" namespace until the unlink lands.
  const std::string tomb =
      path + ".dead." + util::process_token() + "." + std::to_string(claims_);
  if (::rename(path.c_str(), tomb.c_str()) == 0) {
    ::unlink(tomb.c_str());
    ++reclaimed_;
    return true;
  }
  return errno == ENOENT;  // someone else stole (or released) it first
}

std::optional<Lease> LeaseDir::try_claim(std::uint64_t shard,
                                         const std::string& worker_id) {
  const std::string path = path_for(shard);
  // Two rounds: a fresh claim, and — after stealing an expired lease —
  // one retry. Losing both rounds means a live competitor holds it now.
  for (int attempt = 0; attempt < 2; ++attempt) {
    Lease lease;
    lease.shard = shard;
    lease.worker = worker_id;
    lease.token =
        util::process_token() + "." + std::to_string(++claims_);
    lease.heartbeats = 0;
    lease.claimed_unix = util::unix_now_seconds();
    if (util::create_file_exclusive(path, lease.to_json() + "\n")) {
      return lease;
    }
    if (!expired_by_age(path)) return std::nullopt;  // live holder
    if (!steal(path)) return std::nullopt;
  }
  return std::nullopt;
}

bool LeaseDir::renew(Lease& lease) {
  const std::string path = path_for(lease.shard);
  Lease current;
  try {
    current = Lease::from_json(slurp(path));
  } catch (const std::exception&) {
    return false;  // vanished or torn: treat as stolen
  }
  if (current.token != lease.token) return false;  // stolen for real
  ++lease.heartbeats;
  // The replace both persists the bumped counter and refreshes the mtime
  // that expiry judgements read. A steal landing between the ownership
  // check above and this rename is lost to the thief's O_EXCL create —
  // the rename simply reinstates our lease and the thief's next renew
  // fails the token check; the shard runs twice and the fold dedupes.
  util::replace_file_durable(path, lease.to_json() + "\n");
  return true;
}

void LeaseDir::release(const Lease& lease) {
  const std::string path = path_for(lease.shard);
  try {
    if (Lease::from_json(slurp(path)).token != lease.token) return;
  } catch (const std::exception&) {
    return;  // vanished or torn: nothing of ours to release
  }
  ::unlink(path.c_str());
}

std::size_t LeaseDir::reclaim_expired() {
  std::size_t reaped = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string path = entry.path().string();
    const std::string name = entry.path().filename().string();
    const bool is_lease = name.size() > 6 &&
                          name.compare(name.size() - 6, 6, ".lease") == 0;
    if (is_lease) {
      if (expired_by_age(path) && steal(path)) ++reaped;
    } else if (name.find(".lease.dead.") != std::string::npos &&
               expired_by_age(path)) {
      // Tombstone from a stealer that crashed between rename and unlink.
      ::unlink(path.c_str());
    }
  }
  return reaped;
}

std::vector<LeaseDir::Observed> LeaseDir::observe() const {
  std::vector<Observed> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= 6 || name.compare(name.size() - 6, 6, ".lease") != 0) {
      continue;
    }
    const std::string path = entry.path().string();
    Observed observed;
    try {
      observed.lease = Lease::from_json(slurp(path));
      observed.age_seconds = util::file_age_seconds(path);
    } catch (const std::exception&) {
      continue;  // claim in flight or torn crash; ttl resolves it
    }
    observed.expired = observed.age_seconds > ttl_;
    out.push_back(std::move(observed));
  }
  return out;
}

}  // namespace samurai::campaign
