// The campaign service coordinator: reclaim, fold, publish.
//
// `samurai_campaign serve --dir` watches a campaign directory that any
// number of worker processes are appending to. Each tick it (1) reaps
// expired leases so shards owned by dead workers return to the pool,
// (2) folds the ledger's contiguous shard prefix through the ordinary
// `fold_ledger` engine — bit-identical to the single-process fold,
// including where the stopping rule fires — and (3) publishes the result:
// `status.json` (the campaign summary extended with `svc_*` service
// counters and a per-worker throughput table) plus `state.json` for
// pre-service `status` consumers. The coordinator holds no exclusive
// state: killing it loses nothing, and restarting it re-derives
// everything from the directory. It is an observer/janitor, not a
// scheduler — workers self-assign via leases, so the campaign also
// completes with no coordinator at all.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/service/lease.hpp"

namespace samurai::campaign {

struct ServeOptions {
  std::string dir;            ///< campaign directory (required)
  double lease_ttl = 30.0;    ///< must match the workers' ttl scale
  double poll_seconds = 0.5;  ///< tick period
  double max_wall_seconds = 0.0;  ///< stop serving after this long (0 =
                                  ///< until the campaign completes)
  bool watch = false;             ///< live view on `out` every tick
  std::ostream* out = nullptr;    ///< watch/progress stream (nullptr = quiet)

  void validate() const;  ///< throws std::invalid_argument
};

/// Per-worker aggregate over the ledger (attribution via ShardResult::worker).
struct WorkerView {
  std::string worker;  ///< "" = shards run by pre-service `run`/`resume`
  std::uint64_t shards = 0;
  std::uint64_t samples = 0;
  double wall_seconds = 0.0;
  double samples_per_second() const noexcept {
    return wall_seconds > 0.0 ? static_cast<double>(samples) / wall_seconds
                              : 0.0;
  }
};

/// One coordinator observation of the campaign directory.
struct ServiceStatus {
  CampaignResult result;  ///< folded contiguous prefix (stopping rule applied)
  std::uint64_t shards_total = 0;
  std::uint64_t shards_completed = 0;  ///< distinct ledger lines, gaps included
  std::uint64_t leases_active = 0;     ///< live (unexpired) lease files
  std::uint64_t leases_reclaimed = 0;  ///< cumulative, this coordinator
  double oldest_lease_age = 0.0;       ///< seconds; 0 when no leases
  std::vector<WorkerView> workers;     ///< sorted by worker id
  std::vector<LeaseDir::Observed> leases;  ///< live view of lease files

  std::string to_json() const;  ///< status.json payload (svc_* keys)
};

/// One coordinator pass over `dir`: reap expired leases, fold the ledger,
/// publish status.json (and state.json once shards exist). Stateless
/// apart from the cumulative reclaim counter carried via `reclaimed_so_far`.
ServiceStatus coordinator_tick(const std::string& dir, double lease_ttl,
                               std::uint64_t reclaimed_so_far = 0);

/// Serve until the campaign completes or `max_wall_seconds` elapses,
/// ticking every `poll_seconds`. Returns the final observation.
ServiceStatus serve_campaign(const ServeOptions& options);

}  // namespace samurai::campaign
