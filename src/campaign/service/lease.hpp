// Shard leases: cooperative mutual exclusion over shared storage.
//
// The campaign service coordinates elastic worker processes — possibly on
// different hosts — through nothing but files in the campaign directory.
// A worker that wants to run shard i claims `leases/shard-<i>.lease` via
// an O_CREAT|O_EXCL create (exactly one of N racing claimers wins), then
// renews it periodically while the shard runs; the lease file carries the
// worker id, a per-claim ownership token and a monotonic heartbeat
// counter. A lease whose file has not been touched for `ttl` seconds —
// judged by the *filesystem's* mtime clock, the one clock every
// participant on shared storage agrees on — is expired: any process may
// steal it by renaming the file to a unique tombstone (again exactly one
// racer wins the rename) and re-claiming.
//
// Leases are an *efficiency* mechanism, not a correctness one: if a
// stalled worker outlives its ttl and its shard is re-run, both runs are
// bit-identical (sample n depends only on (manifest, n)) and the ledger
// fold deduplicates by shard index, so the worst outcome of any lease
// race is wasted work. The crash matrix lives in DESIGN.md §14.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace samurai::campaign {

/// One parsed lease file.
struct Lease {
  std::uint64_t shard = 0;
  std::string worker;            ///< claiming worker's id
  std::string token;             ///< per-claim unique id; ownership proof
  std::uint64_t heartbeats = 0;  ///< monotonic renewal counter
  double claimed_unix = 0.0;     ///< wall-clock claim time (informational —
                                 ///< expiry uses file mtime, never this)

  std::string to_json() const;
  static Lease from_json(const std::string& text);  ///< throws
};

/// The `leases/` directory of one campaign, with a fixed ttl.
class LeaseDir {
 public:
  /// `campaign_dir` is the checkpoint directory; the leases/ subdirectory
  /// is created on first use. `ttl_seconds` must be positive.
  LeaseDir(std::string campaign_dir, double ttl_seconds);

  double ttl() const noexcept { return ttl_; }
  std::string dir() const { return dir_; }
  std::string path_for(std::uint64_t shard) const;

  /// Claim the lease for `shard`: returns the held lease, or nullopt if a
  /// live (unexpired) holder exists. An expired lease is stolen first —
  /// rename-to-tombstone, so exactly one of N racing stealers proceeds.
  std::optional<Lease> try_claim(std::uint64_t shard,
                                 const std::string& worker_id);

  /// Heartbeat: rewrite the lease with a bumped counter, refreshing its
  /// mtime. Returns false — and leaves the file alone — if the lease was
  /// stolen (the file no longer carries our token); the caller's shard
  /// run is then presumed duplicated and its lease lost.
  bool renew(Lease& lease);

  /// Release after a completed shard: unlink iff still the owner.
  void release(const Lease& lease);

  /// Reap every expired lease file (and stale tombstones left by crashed
  /// stealers). Returns how many were reclaimed. The coordinator calls
  /// this each tick; claimants reclaim their own target shards inline.
  std::size_t reclaim_expired();

  /// One observed lease file: parsed content plus filesystem age.
  struct Observed {
    Lease lease;
    double age_seconds = 0.0;
    bool expired = false;
  };
  /// Snapshot of all current lease files (unparsable ones skipped:
  /// either a claim in flight or a torn crash, both resolved by ttl).
  std::vector<Observed> observe() const;

  /// Cumulative count of expired leases this object has reclaimed.
  std::uint64_t reclaimed() const noexcept { return reclaimed_; }

 private:
  bool expired_by_age(const std::string& path) const;
  /// Steal an expired lease file. True if we won the steal (or the file
  /// vanished on its own); false only on an unexpected I/O error.
  bool steal(const std::string& path);

  std::string dir_;
  double ttl_;
  std::uint64_t reclaimed_ = 0;
  std::uint64_t claims_ = 0;  ///< per-object token uniquifier
};

}  // namespace samurai::campaign
