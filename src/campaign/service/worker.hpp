// The campaign service worker: claim a shard, run it, append, repeat.
//
// `samurai_campaign work --dir` turns any process with access to the
// campaign directory into an elastic worker. Each loop iteration reloads
// the ledger, re-evaluates the stopping rule on the folded contiguous
// prefix (so workers stop claiming the moment the campaign's sequential
// decision is reachable), claims the lowest unfinished shard whose lease
// is free or expired, runs it through the ordinary `run_shard` engine
// while a heartbeat thread renews the lease, appends the one-line result
// durably, and releases the lease. Workers never write manifest.json or
// state.json — the ledger append is their only mutation of shared
// estimator state, which is what makes any number of them safe.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace samurai::campaign {

struct WorkerOptions {
  std::string dir;        ///< campaign directory (required)
  std::string worker_id;  ///< "" = util::default_worker_id() (host:pid)
  double lease_ttl = 30.0;     ///< seconds without heartbeat until stealable
  double poll_seconds = 0.2;   ///< sleep when every open shard is leased
  std::uint64_t max_shards = 0;    ///< run at most this many (0 = no cap)
  double max_wall_seconds = 0.0;   ///< give up after this long (0 = never);
                                   ///< the CI bound for fault-injection runs
  std::ostream* progress = nullptr;  ///< one line per shard (nullptr = quiet)

  /// Throws std::invalid_argument on an unusable configuration (empty
  /// dir, non-positive ttl/poll, or a worker id that cannot live inside
  /// a flat-JSON lease file / ledger line).
  void validate() const;
};

struct WorkerReport {
  std::string worker_id;
  std::uint64_t shards_run = 0;
  std::uint64_t samples_run = 0;
  std::uint64_t leases_lost = 0;  ///< renewals that found the lease stolen
  std::uint64_t leases_reclaimed = 0;  ///< expired leases this worker stole
  bool campaign_complete = false;  ///< budget exhausted or early-stopped
  bool timed_out = false;          ///< max_wall_seconds elapsed first
  double wall_seconds = 0.0;

  std::string to_json() const;  ///< one machine-readable summary line
};

/// Run the worker loop until the campaign completes, `max_shards` is
/// reached, or `max_wall_seconds` elapses. Throws on configuration or
/// unrecoverable I/O errors; lease races are handled, not thrown.
WorkerReport run_worker(const WorkerOptions& options);

}  // namespace samurai::campaign
