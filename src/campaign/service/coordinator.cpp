#include "campaign/service/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "campaign/checkpoint.hpp"
#include "campaign/json.hpp"

namespace samurai::campaign {

void ServeOptions::validate() const {
  if (dir.empty()) {
    throw std::invalid_argument("serve: campaign --dir is required");
  }
  if (!(lease_ttl > 0.0)) {
    throw std::invalid_argument("serve: --lease-ttl must be positive");
  }
  if (!(poll_seconds > 0.0)) {
    throw std::invalid_argument("serve: --poll must be positive");
  }
}

std::string ServiceStatus::to_json() const {
  JsonWriter json;
  result.write_fields(json);
  json.add_u64("svc_shards_total", shards_total);
  json.add_u64("svc_shards_completed", shards_completed);
  json.add_u64("svc_shards_folded", result.shards_done);
  json.add_u64("svc_leases_active", leases_active);
  json.add_u64("svc_leases_reclaimed", leases_reclaimed);
  json.add("svc_oldest_lease_age", oldest_lease_age);
  json.add_u64("svc_workers", workers.size());
  std::string detail = "[";
  for (const auto& view : workers) {
    if (detail.size() > 1) detail += ", ";
    JsonWriter row;
    row.add("worker", view.worker.empty() ? "(local)" : view.worker);
    row.add_u64("shards", view.shards);
    row.add_u64("samples", view.samples);
    row.add("wall_seconds", view.wall_seconds);
    row.add("samples_per_second", view.samples_per_second());
    detail += row.str();
  }
  detail += "]";
  json.add_raw("svc_worker_detail", detail);
  return json.str();
}

namespace {

std::vector<WorkerView> aggregate_workers(
    const std::vector<ShardResult>& ledger) {
  std::map<std::string, WorkerView> by_id;
  for (const auto& shard : ledger) {
    WorkerView& view = by_id[shard.worker];
    view.worker = shard.worker;
    ++view.shards;
    view.samples += shard.samples;
    view.wall_seconds += shard.wall_seconds;
  }
  std::vector<WorkerView> out;
  out.reserve(by_id.size());
  for (auto& [id, view] : by_id) out.push_back(std::move(view));
  return out;
}

void print_watch(std::ostream& out, const ServiceStatus& status) {
  const CampaignResult& result = status.result;
  out << "[serve " << result.manifest.name << "] shards "
      << status.shards_completed << "/" << status.shards_total << " (folded "
      << result.shards_done << ")  samples " << result.samples_done << "/"
      << result.manifest.budget << "  estimate " << result.estimate
      << "  rel-CI-half-width " << result.relative_half_width << "\n";
  for (const auto& view : status.workers) {
    out << "  worker " << (view.worker.empty() ? "(local)" : view.worker)
        << ": " << view.shards << " shards, " << view.samples << " samples, "
        << view.samples_per_second() << " samples/s\n";
  }
  for (const auto& observed : status.leases) {
    out << "  lease shard " << observed.lease.shard << " -> "
        << observed.lease.worker << " (age " << observed.age_seconds << " s"
        << (observed.expired ? ", EXPIRED" : "") << ", "
        << observed.lease.heartbeats << " heartbeats)\n";
  }
  out << "  nw_iterations " << result.solver.newton_iterations
      << "  sp_solves " << result.solver.sp_solves << "  bt_batches "
      << result.solver.bt_batches << "  rtn_candidates "
      << result.rtn.candidates << "  reclaimed " << status.leases_reclaimed
      << "\n";
}

}  // namespace

ServiceStatus coordinator_tick(const std::string& dir, double lease_ttl,
                               std::uint64_t reclaimed_so_far) {
  Checkpoint checkpoint(dir);
  const Manifest manifest = checkpoint.load_manifest();
  LeaseDir leases(dir, lease_ttl);

  ServiceStatus status;
  status.leases_reclaimed = reclaimed_so_far + leases.reclaim_expired();

  const auto ledger = checkpoint.load_ledger();
  status.result = fold_ledger(manifest, ledger);
  status.shards_total = manifest.shard_count();
  status.shards_completed = ledger.size();
  status.workers = aggregate_workers(ledger);
  status.leases = leases.observe();
  for (const auto& observed : status.leases) {
    if (!observed.expired) ++status.leases_active;
    status.oldest_lease_age =
        std::max(status.oldest_lease_age, observed.age_seconds);
  }

  write_file_atomic(checkpoint.status_path(), status.to_json() + "\n");
  if (status.result.shards_done > 0) {
    checkpoint.store_state(status.result.to_json());
  }
  return status;
}

ServiceStatus serve_campaign(const ServeOptions& options) {
  options.validate();
  const auto started = std::chrono::steady_clock::now();
  std::uint64_t reclaimed = 0;
  for (;;) {
    ServiceStatus status =
        coordinator_tick(options.dir, options.lease_ttl, reclaimed);
    reclaimed = status.leases_reclaimed;
    if (options.watch && options.out) print_watch(*options.out, status);
    if (status.result.complete) return status;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    if (options.max_wall_seconds > 0.0 &&
        elapsed > options.max_wall_seconds) {
      return status;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options.poll_seconds));
  }
}

}  // namespace samurai::campaign
