#include "campaign/service/worker.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "campaign/checkpoint.hpp"
#include "campaign/json.hpp"
#include "campaign/runner.hpp"
#include "campaign/service/lease.hpp"
#include "util/fs.hpp"

namespace samurai::campaign {

namespace {

using Clock = std::chrono::steady_clock;

/// Renews `lease` every `period` seconds on a background thread while a
/// shard runs on the caller's thread. Joined (never detached) so the
/// lease file is quiescent before the caller releases it.
class Heartbeat {
 public:
  Heartbeat(LeaseDir& leases, Lease& lease, double period)
      : leases_(leases), lease_(lease) {
    thread_ = std::thread([this, period] {
      std::unique_lock<std::mutex> lock(mutex_);
      const auto tick = std::chrono::duration<double>(period);
      while (!cv_.wait_for(lock, tick, [this] { return stop_; })) {
        lock.unlock();
        bool renewed = false;
        try {
          renewed = leases_.renew(lease_);
        } catch (const std::exception&) {
          renewed = false;  // transient I/O failure: retry next tick
        }
        lock.lock();
        if (!renewed) {
          lost_ = true;
          return;  // stolen: stop touching a file that is no longer ours
        }
      }
    });
  }

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  ~Heartbeat() { stop(); }

  /// Stop renewing and join. Returns true if the lease was lost.
  bool stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    return lost_;
  }

 private:
  LeaseDir& leases_;
  Lease& lease_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool lost_ = false;  // written by the thread, read after join
};

}  // namespace

void WorkerOptions::validate() const {
  if (dir.empty()) {
    throw std::invalid_argument("worker: campaign --dir is required");
  }
  if (!(lease_ttl > 0.0)) {
    throw std::invalid_argument("worker: --lease-ttl must be positive");
  }
  if (!(poll_seconds > 0.0)) {
    throw std::invalid_argument("worker: --poll must be positive");
  }
  for (char ch : worker_id) {
    // The id is embedded in flat-JSON lease files and ledger lines; keep
    // it printable and free of the writer's escape/separator characters.
    if (ch == '"' || ch == '\\' || ch == '/' ||
        static_cast<unsigned char>(ch) < 0x21) {
      throw std::invalid_argument(
          "worker: --worker-id must be printable without spaces, quotes, "
          "backslashes or slashes");
    }
  }
}

std::string WorkerReport::to_json() const {
  JsonWriter json;
  json.add("worker", worker_id);
  json.add_u64("svc_shards_run", shards_run);
  json.add_u64("svc_samples_run", samples_run);
  json.add_u64("svc_leases_lost", leases_lost);
  json.add_u64("svc_leases_reclaimed", leases_reclaimed);
  json.add("svc_campaign_complete", campaign_complete);
  json.add("svc_timed_out", timed_out);
  json.add("wall_seconds", wall_seconds);
  return json.str();
}

WorkerReport run_worker(const WorkerOptions& options_in) {
  WorkerOptions options = options_in;
  if (options.worker_id.empty()) {
    options.worker_id = util::default_worker_id();
  }
  options.validate();

  const Checkpoint checkpoint(options.dir);
  const Manifest manifest = checkpoint.load_manifest();
  manifest.validate();
  LeaseDir leases(options.dir, options.lease_ttl);

  const auto started = Clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - started).count();
  };

  WorkerReport report;
  report.worker_id = options.worker_id;

  for (;;) {
    if (options.max_wall_seconds > 0.0 &&
        elapsed() > options.max_wall_seconds) {
      report.timed_out = true;
      break;
    }

    const auto ledger = checkpoint.load_ledger();
    const CampaignResult folded = fold_ledger(manifest, ledger);
    if (folded.complete) {
      report.campaign_complete = true;
      break;
    }
    if (options.max_shards != 0 && report.shards_run >= options.max_shards) {
      break;
    }

    std::unordered_set<std::uint64_t> done;
    done.reserve(ledger.size());
    for (const auto& shard : ledger) done.insert(shard.index);

    // Lowest-index-first keeps the contiguous prefix growing, which is
    // what advances the stopping rule; it also means gaps left by dead
    // workers are the first thing a live worker goes after.
    bool claimed = false;
    for (std::uint64_t i = 0; i < manifest.shard_count(); ++i) {
      if (done.count(i) != 0) continue;
      auto lease = leases.try_claim(i, options.worker_id);
      if (!lease) continue;
      claimed = true;

      ShardResult shard;
      {
        Heartbeat heartbeat(leases, *lease, options.lease_ttl / 3.0);
        shard = run_shard(manifest, shard_spec(manifest, i));
        shard.worker = options.worker_id;
        if (heartbeat.stop()) {
          // Presumed dead and our shard re-assigned. Our result is
          // bit-identical to the thief's, so append it anyway — the fold
          // dedupes — but leave the thief's lease file alone.
          ++report.leases_lost;
          lease.reset();
        }
      }
      checkpoint.append_ledger(shard);
      if (lease) leases.release(*lease);
      ++report.shards_run;
      report.samples_run += shard.samples;
      if (options.progress) {
        *options.progress << "[worker " << options.worker_id << "] shard "
                          << shard.index << " done (" << shard.samples
                          << " samples, " << shard.wall_seconds << " s)\n";
      }
      break;  // re-read the ledger before choosing the next shard
    }

    if (!claimed) {
      // Everything open is leased to live workers (or the directory just
      // changed under us): wait and re-scan.
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.poll_seconds));
    }
  }

  report.leases_reclaimed = leases.reclaimed();
  report.wall_seconds = elapsed();
  return report;
}

}  // namespace samurai::campaign
