// Flat JSON read/write for the campaign runtime's on-disk artifacts
// (manifest.json, shards.jsonl lines, state.json).
//
// The campaign files are all *flat* objects — string / number / bool
// values, no nesting — so a full JSON library is not needed. The writer
// preserves field order and renders doubles with enough digits to
// round-trip bit-exactly (a checkpoint must restore the estimator state
// the uninterrupted run would have had); the parser accepts exactly the
// subset the writer emits plus whitespace.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace samurai::campaign {

/// Render a double so that parsing the text recovers the identical bits
/// (17 significant digits; glibc's strtod is correctly rounded).
std::string format_double(double value);

/// Order-preserving writer for one flat JSON object.
class JsonWriter {
 public:
  void add(const std::string& key, const std::string& value);  // quoted
  void add(const std::string& key, const char* value);
  void add(const std::string& key, double value);
  void add(const std::string& key, bool value);
  void add_u64(const std::string& key, std::uint64_t value);
  /// Pre-rendered JSON (e.g. a nested array built by the caller).
  void add_raw(const std::string& key, const std::string& raw);

  std::string str() const;  ///< {"k": v, ...} on one line

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Parsed flat JSON object with typed accessors. Unknown keys are kept
/// (forward compatibility); missing keys fall back.
class JsonObject {
 public:
  /// Parse one flat object. Throws std::runtime_error on malformed input.
  static JsonObject parse(const std::string& text);

  bool has(const std::string& key) const;
  std::string get_string(const std::string& key, std::string fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;  ///< raw (strings unescaped)
  std::map<std::string, bool> quoted_;
};

}  // namespace samurai::campaign
