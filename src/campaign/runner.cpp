#include "campaign/runner.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <ostream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "campaign/checkpoint.hpp"
#include "campaign/json.hpp"

namespace samurai::campaign {

namespace {

void fold(CampaignResult& result, const ShardResult& shard) {
  result.weighted.merge(shard.weighted);
  result.fails.merge(shard.fails);
  result.nominal_fails.merge(shard.nominal_fails);
  result.slow.merge(shard.slow);
  result.value.merge(shard.value);
  result.samples_done += shard.samples;
  result.wall_seconds += shard.wall_seconds;
  result.solver.merge(shard.solver);
  result.rtn.merge(shard.rtn);
  ++result.shards_done;
}

void refresh_estimate(CampaignResult& result) {
  const double z = result.manifest.confidence_z;
  switch (result.manifest.kind) {
    case CampaignKind::kImportance:
      result.estimate = result.weighted.probability();
      result.standard_error = result.weighted.standard_error();
      result.ci = result.weighted.normal_interval(z);
      result.effective_sample_size = result.weighted.effective_sample_size();
      break;
    case CampaignKind::kArrayYield:
      result.estimate = result.fails.rate();
      result.ci = result.fails.wilson_interval(z);
      result.standard_error = result.ci.half_width() / z;
      result.effective_sample_size = static_cast<double>(result.fails.count);
      break;
    case CampaignKind::kVmin:
      result.estimate = result.value.mean;
      result.standard_error = result.value.standard_error();
      result.ci = result.value.normal_interval(z);
      result.effective_sample_size = static_cast<double>(result.value.count);
      break;
  }
  result.relative_half_width =
      result.estimate > 0.0 && result.samples_done > 0
          ? result.ci.half_width() / result.estimate
          : std::numeric_limits<double>::infinity();
}

/// Sequential stopping rule, evaluated at shard boundaries only (so the
/// decision sequence is a pure function of the folded shard prefix).
bool should_stop(const CampaignResult& result) {
  const Manifest& manifest = result.manifest;
  if (manifest.target_rel_half_width <= 0.0) return false;
  if (result.samples_done < manifest.min_samples) return false;
  // A zero/degenerate interval means "no information yet" (no failures
  // observed, or a single V_min replica), not a settled estimate.
  if (!(result.estimate > 0.0) || !(result.standard_error > 0.0)) return false;
  return result.relative_half_width <= manifest.target_rel_half_width;
}

void finalise(CampaignResult& result) {
  if (result.stopped_early || result.samples_done >= result.manifest.budget) {
    result.complete = true;
  }
  result.budget_saved =
      result.stopped_early ? result.manifest.budget - result.samples_done : 0;
}

void report_progress(std::ostream* out, const CampaignResult& result) {
  if (!out) return;
  *out << "[campaign " << result.manifest.name << "] shard "
       << result.shards_done << "/" << result.manifest.shard_count()
       << "  samples " << result.samples_done << "/" << result.manifest.budget
       << "  estimate " << result.estimate << "  rel-CI-half-width "
       << result.relative_half_width << "\n";
}

/// Shared engine: fold the existing ledger shard by shard (re-applying the
/// stopping rule so a resumed campaign stops exactly where the
/// uninterrupted one would have), then optionally execute further shards.
/// Ledger entries beyond a gap (a distributed campaign whose workers
/// completed shards out of order) are folded in place when the fold
/// reaches their index — never re-executed, never double-folded.
CampaignResult drive(const Manifest& manifest, const RunOptions& options,
                     Checkpoint* checkpoint,
                     const std::vector<ShardResult>& ledger, bool execute) {
  CampaignResult result = fold_ledger(manifest, ledger);

  // Completed shards the prefix fold could not reach (beyond a gap).
  std::map<std::uint64_t, ShardResult> completed_ahead;
  for (const auto& shard : ledger) {
    if (shard.index >= result.shards_done) completed_ahead.emplace(shard.index, shard);
  }

  std::uint64_t executed = 0;
  while (execute && !result.stopped_early &&
         result.shards_done < manifest.shard_count()) {
    ShardResult shard;
    bool ran = false;
    const auto ahead = completed_ahead.find(result.shards_done);
    if (ahead != completed_ahead.end()) {
      shard = ahead->second;  // gap closed: fold the stored result
    } else {
      if (options.max_shards_this_run != 0 &&
          executed >= options.max_shards_this_run) {
        break;  // simulated kill / per-invocation budget
      }
      shard = run_shard(manifest, shard_spec(manifest, result.shards_done));
      ran = true;
      ++executed;
    }
    fold(result, shard);
    refresh_estimate(result);
    if (should_stop(result)) result.stopped_early = true;
    finalise(result);
    if (ran) {
      if (checkpoint) {
        checkpoint->append_ledger(shard);
        checkpoint->store_state(result.to_json());
      }
      report_progress(options.progress, result);
    }
  }

  refresh_estimate(result);
  finalise(result);
  if (checkpoint && result.shards_done > 0) {
    checkpoint->store_state(result.to_json());
  }
  return result;
}

}  // namespace

CampaignResult fold_ledger(const Manifest& manifest,
                           const std::vector<ShardResult>& ledger) {
  CampaignResult result;
  result.manifest = manifest;
  for (const auto& shard : ledger) {
    if (shard.index != result.shards_done) break;  // contiguous prefix only
    fold(result, shard);
    refresh_estimate(result);
    if (should_stop(result)) {
      result.stopped_early = true;
      break;
    }
  }
  refresh_estimate(result);
  finalise(result);
  return result;
}

std::string CampaignResult::to_json() const {
  JsonWriter json;
  write_fields(json);
  return json.str();
}

void CampaignResult::write_fields(JsonWriter& json) const {
  json.add("kind", to_string(manifest.kind));
  json.add("name", manifest.name);
  json.add("status", stopped_early ? "stopped_early"
                     : complete    ? "complete"
                                   : "paused");
  json.add_u64("shards_done", shards_done);
  json.add_u64("shard_count", manifest.shard_count());
  json.add_u64("budget", manifest.budget);
  json.add_u64("budget_used", samples_done);
  json.add_u64("budget_saved", budget_saved);
  json.add("estimate", estimate);
  json.add("standard_error", standard_error);
  json.add("ci_lo", ci.lo);
  json.add("ci_hi", ci.hi);
  json.add("relative_half_width", relative_half_width);
  json.add("effective_sample_size", effective_sample_size);
  json.add_u64("failures", manifest.kind == CampaignKind::kImportance
                               ? weighted.failures
                               : fails.successes);
  json.add("wall_seconds", wall_seconds);
  json.add_u64("nw_iterations", solver.newton_iterations);
  json.add_u64("nw_factorizations", solver.lu_factorizations);
  json.add_u64("nw_solves", solver.lu_solves);
  json.add_u64("nw_bypass_hits", solver.bypass_hits);
  json.add_u64("nw_device_loads", solver.device_loads);
  json.add_u64("nw_cache_hits", solver.linear_cache_hits);
  json.add_u64("nw_steps_accepted", solver.steps_accepted);
  json.add_u64("nw_steps_rejected", solver.steps_rejected);
  json.add_u64("nw_transients", solver.transients);
  json.add_u64("nw_workspace_allocations", solver.workspace_allocations);
  json.add_u64("sp_symbolic_analyses", solver.sp_symbolic_analyses);
  json.add_u64("sp_numeric_refactors", solver.sp_numeric_refactors);
  json.add_u64("sp_solves", solver.sp_solves);
  json.add_u64("bt_batches", solver.bt_batches);
  json.add_u64("bt_lanes", solver.bt_lanes);
  json.add_u64("bt_steps", solver.bt_steps);
  json.add_u64("ap_elided_loads", solver.ap_elided_loads);
  json.add_u64("ap_partial_refactors", solver.ap_partial_refactors);
  json.add_u64("ap_rows_skipped", solver.ap_rows_skipped);
  json.add_u64("ap_folded_cells", solver.ap_folded_cells);
  json.add_u64("rtn_candidates", rtn.candidates);
  json.add_u64("rtn_accepted", rtn.accepted);
  json.add_u64("rtn_segments", rtn.segments);
  json.add_u64("rtn_rng_refills", rtn.rng_refills);
  json.add("rtn_envelope_integral", rtn.envelope_integral);
  json.add("rtn_fixed_bound_integral", rtn.fixed_bound_integral);
  json.add("rtn_envelope_efficiency", rtn.envelope_efficiency());
}

CampaignResult run_campaign(const Manifest& manifest,
                            const RunOptions& options) {
  manifest.validate();
  if (options.dir.empty()) {
    return drive(manifest, options, nullptr, {}, /*execute=*/true);
  }
  Checkpoint checkpoint(options.dir);
  checkpoint.init(manifest);
  return drive(manifest, options, &checkpoint, {}, /*execute=*/true);
}

CampaignResult resume_campaign(const RunOptions& options) {
  if (options.dir.empty()) {
    throw std::invalid_argument("resume_campaign: checkpoint dir required");
  }
  Checkpoint checkpoint(options.dir);
  const Manifest manifest = checkpoint.load_manifest();
  manifest.validate();
  return drive(manifest, options, &checkpoint, checkpoint.load_ledger(),
               /*execute=*/true);
}

CampaignResult campaign_status(const std::string& dir) {
  Checkpoint checkpoint(dir);
  const Manifest manifest = checkpoint.load_manifest();
  return fold_ledger(manifest, checkpoint.load_ledger());
}

}  // namespace samurai::campaign
