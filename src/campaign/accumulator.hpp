// Streaming statistics for Monte-Carlo campaigns.
//
// A campaign folds per-shard results into these accumulators one shard at
// a time, so memory stays O(1) in the sample budget and a checkpoint only
// has to persist a handful of doubles per shard. All three accumulators
// obey the same contract: `add` consumes one sample, `merge` folds a
// completed sub-accumulator (a shard) in, and both paths give the exact
// same result as long as the add/merge *order* is the same — which the
// runner guarantees by always folding shards in index order.
#pragma once

#include <cstdint>

namespace samurai::campaign {

/// A two-sided confidence interval on an estimate.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  double half_width() const noexcept { return 0.5 * (hi - lo); }
};

/// Welford's online mean/variance. Numerically stable where the naive
/// sum-of-squares estimator cancels catastrophically (mean >> stddev, the
/// regime of e.g. V_min values clustered near 0.8 V with mV spread).
struct Welford {
  std::uint64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;  ///< sum of squared deviations from the running mean

  void add(double x) noexcept;
  /// Chan's parallel update: fold a finished sub-accumulator in.
  void merge(const Welford& other) noexcept;

  double variance() const noexcept;        ///< sample variance (n-1)
  double standard_error() const noexcept;  ///< sqrt(variance / n)
  Interval normal_interval(double z) const noexcept;
};

/// Likelihood-ratio-weighted failure estimator. With unit weights this is
/// the plain Monte-Carlo failure fraction; with importance-sampling
/// weights it reproduces `sram::ImportanceResult` exactly (same moment
/// formulas, accumulated in sample order).
struct WeightedFailure {
  std::uint64_t count = 0;
  std::uint64_t failures = 0;
  double weight_sum = 0.0;
  double weight_sq_sum = 0.0;
  double fail_weight_sum = 0.0;
  double fail_weight_sq_sum = 0.0;

  void add(double weight, bool failed) noexcept;
  void merge(const WeightedFailure& other) noexcept;

  double probability() const noexcept;  ///< Σ(w·1_fail) / n, unbiased
  double standard_error() const noexcept;
  double effective_sample_size() const noexcept;  ///< (Σw)² / Σw²
  Interval normal_interval(double z) const noexcept;
};

/// Bernoulli counter with a Wilson score interval (well-behaved at 0 and
/// n successes, unlike the normal approximation).
struct Binomial {
  std::uint64_t count = 0;
  std::uint64_t successes = 0;

  void add(bool success) noexcept;
  void merge(const Binomial& other) noexcept;

  double rate() const noexcept;
  Interval wilson_interval(double z) const noexcept;
};

}  // namespace samurai::campaign
