#include "campaign/manifest.hpp"

#include <stdexcept>

#include "campaign/json.hpp"
#include "spice/analysis.hpp"

namespace samurai::campaign {

std::string to_string(CampaignKind kind) {
  switch (kind) {
    case CampaignKind::kImportance: return "importance";
    case CampaignKind::kArrayYield: return "array-yield";
    case CampaignKind::kVmin: return "vmin";
  }
  return "unknown";
}

CampaignKind kind_from_string(const std::string& name) {
  if (name == "importance") return CampaignKind::kImportance;
  if (name == "array-yield" || name == "array") return CampaignKind::kArrayYield;
  if (name == "vmin") return CampaignKind::kVmin;
  throw std::invalid_argument("unknown campaign kind: " + name);
}

std::uint64_t Manifest::shard_count() const {
  if (shard_size == 0) return 0;
  return (budget + shard_size - 1) / shard_size;
}

void Manifest::validate() const {
  if (budget == 0) throw std::invalid_argument("manifest: budget must be > 0");
  if (shard_size == 0) {
    throw std::invalid_argument("manifest: shard_size must be > 0");
  }
  if (kind == CampaignKind::kImportance && !(sigma_vt > 0.0)) {
    throw std::invalid_argument("manifest: sigma_vt must be > 0");
  }
  if (batch == 0) throw std::invalid_argument("manifest: batch must be > 0");
  if (batch > 1 && (kind != CampaignKind::kImportance || with_rtn)) {
    throw std::invalid_argument(
        "manifest: batch > 1 requires kind = importance with with_rtn = "
        "false (only the nominal-only workload batches)");
  }
  if (target_rel_half_width < 0.0) {
    throw std::invalid_argument("manifest: target_rel_half_width must be >= 0");
  }
  if (!(confidence_z > 0.0)) {
    throw std::invalid_argument("manifest: confidence_z must be > 0");
  }
  if (kind == CampaignKind::kVmin) {
    const bool open_ceiling = v_hi <= 0.0;  // resolved from the node later
    if (!open_ceiling && !(v_lo < v_hi)) {
      throw std::invalid_argument("manifest: bad vmin sweep range");
    }
    if (!(resolution > 0.0)) {
      throw std::invalid_argument("manifest: resolution must be > 0");
    }
    if (rtn_seeds == 0) {
      throw std::invalid_argument("manifest: rtn_seeds must be > 0");
    }
  }
  if ((rows == 0) != (cols == 0)) {
    throw std::invalid_argument(
        "manifest: rows and cols must be set together");
  }
  if (rows > 0 && kind == CampaignKind::kArrayYield && budget > rows * cols) {
    throw std::invalid_argument(
        "manifest: budget exceeds the rows*cols cell population");
  }
  try {
    (void)spice::activity_mode_from_string(activity);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("manifest: unknown activity mode '" +
                                activity + "' (off | elide | schur)");
  }
  bool any_bit = false;
  for (char ch : bits) any_bit |= (ch == '0' || ch == '1');
  if (!any_bit) throw std::invalid_argument("manifest: bits has no 0/1");
}

std::string Manifest::to_json() const {
  JsonWriter json;
  json.add("kind", to_string(kind));
  json.add("name", name);
  json.add_u64("seed", seed);
  json.add_u64("budget", budget);
  json.add_u64("shard_size", shard_size);
  json.add_u64("threads", threads);
  json.add_u64("batch", batch);
  json.add("target_rel_half_width", target_rel_half_width);
  json.add("confidence_z", confidence_z);
  json.add_u64("min_samples", min_samples);
  json.add("node", node);
  json.add("v_dd", v_dd);
  json.add("bits", bits);
  json.add("rtn_scale", rtn_scale);
  json.add("extra_node_cap", extra_node_cap);
  json.add("period", period);
  json.add("sigma_vt", sigma_vt);
  for (int m = 0; m < 6; ++m) {
    json.add("shift_m" + std::to_string(m + 1), shift[static_cast<size_t>(m)]);
  }
  json.add("count_slow_as_fail", count_slow_as_fail);
  json.add("with_rtn", with_rtn);
  json.add_u64("rows", rows);
  json.add_u64("cols", cols);
  json.add("activity", activity);
  json.add("v_lo", v_lo);
  json.add("v_hi", v_hi);
  json.add("resolution", resolution);
  json.add_u64("rtn_seeds", rtn_seeds);
  return json.str();
}

Manifest Manifest::from_json(const std::string& text) {
  const JsonObject json = JsonObject::parse(text);
  Manifest manifest;
  manifest.kind = kind_from_string(json.get_string("kind", "importance"));
  manifest.name = json.get_string("name", manifest.name);
  manifest.seed = json.get_u64("seed", manifest.seed);
  manifest.budget = json.get_u64("budget", manifest.budget);
  manifest.shard_size = json.get_u64("shard_size", manifest.shard_size);
  manifest.threads = json.get_u64("threads", manifest.threads);
  manifest.batch = json.get_u64("batch", manifest.batch);
  manifest.target_rel_half_width =
      json.get_double("target_rel_half_width", manifest.target_rel_half_width);
  manifest.confidence_z = json.get_double("confidence_z", manifest.confidence_z);
  manifest.min_samples = json.get_u64("min_samples", manifest.min_samples);
  manifest.node = json.get_string("node", manifest.node);
  manifest.v_dd = json.get_double("v_dd", manifest.v_dd);
  manifest.bits = json.get_string("bits", manifest.bits);
  manifest.rtn_scale = json.get_double("rtn_scale", manifest.rtn_scale);
  manifest.extra_node_cap =
      json.get_double("extra_node_cap", manifest.extra_node_cap);
  manifest.period = json.get_double("period", manifest.period);
  manifest.sigma_vt = json.get_double("sigma_vt", manifest.sigma_vt);
  for (int m = 0; m < 6; ++m) {
    manifest.shift[static_cast<size_t>(m)] =
        json.get_double("shift_m" + std::to_string(m + 1), 0.0);
  }
  manifest.count_slow_as_fail =
      json.get_bool("count_slow_as_fail", manifest.count_slow_as_fail);
  manifest.with_rtn = json.get_bool("with_rtn", manifest.with_rtn);
  manifest.rows = json.get_u64("rows", manifest.rows);
  manifest.cols = json.get_u64("cols", manifest.cols);
  manifest.activity = json.get_string("activity", manifest.activity);
  manifest.v_lo = json.get_double("v_lo", manifest.v_lo);
  manifest.v_hi = json.get_double("v_hi", manifest.v_hi);
  manifest.resolution = json.get_double("resolution", manifest.resolution);
  manifest.rtn_seeds = json.get_u64("rtn_seeds", manifest.rtn_seeds);
  manifest.validate();
  return manifest;
}

}  // namespace samurai::campaign
