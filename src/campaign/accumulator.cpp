#include "campaign/accumulator.hpp"

#include <algorithm>
#include <cmath>

namespace samurai::campaign {

void Welford::add(double x) noexcept {
  ++count;
  const double delta = x - mean;
  mean += delta / static_cast<double>(count);
  m2 += delta * (x - mean);
}

void Welford::merge(const Welford& other) noexcept {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  const double n_a = static_cast<double>(count);
  const double n_b = static_cast<double>(other.count);
  const double delta = other.mean - mean;
  const double total = n_a + n_b;
  mean += delta * (n_b / total);
  m2 += other.m2 + delta * delta * (n_a * n_b / total);
  count += other.count;
}

double Welford::variance() const noexcept {
  return count > 1 ? m2 / static_cast<double>(count - 1) : 0.0;
}

double Welford::standard_error() const noexcept {
  return count > 0 ? std::sqrt(variance() / static_cast<double>(count)) : 0.0;
}

Interval Welford::normal_interval(double z) const noexcept {
  const double half = z * standard_error();
  return {mean - half, mean + half};
}

void WeightedFailure::add(double weight, bool failed) noexcept {
  ++count;
  weight_sum += weight;
  weight_sq_sum += weight * weight;
  if (failed) {
    ++failures;
    fail_weight_sum += weight;
    fail_weight_sq_sum += weight * weight;
  }
}

void WeightedFailure::merge(const WeightedFailure& other) noexcept {
  count += other.count;
  failures += other.failures;
  weight_sum += other.weight_sum;
  weight_sq_sum += other.weight_sq_sum;
  fail_weight_sum += other.fail_weight_sum;
  fail_weight_sq_sum += other.fail_weight_sq_sum;
}

double WeightedFailure::probability() const noexcept {
  return count > 0 ? fail_weight_sum / static_cast<double>(count) : 0.0;
}

double WeightedFailure::standard_error() const noexcept {
  if (count == 0) return 0.0;
  // Var(p̂) = (E[w² 1_fail] - p²) / n — the estimator of importance.cpp.
  const double n = static_cast<double>(count);
  const double p = probability();
  const double second_moment = fail_weight_sq_sum / n;
  const double variance = second_moment - p * p;
  return std::sqrt(variance > 0.0 ? variance / n : 0.0);
}

double WeightedFailure::effective_sample_size() const noexcept {
  return weight_sq_sum > 0.0 ? weight_sum * weight_sum / weight_sq_sum : 0.0;
}

Interval WeightedFailure::normal_interval(double z) const noexcept {
  const double p = probability();
  const double half = z * standard_error();
  return {p - half, p + half};
}

void Binomial::add(bool success) noexcept {
  ++count;
  if (success) ++successes;
}

void Binomial::merge(const Binomial& other) noexcept {
  count += other.count;
  successes += other.successes;
}

double Binomial::rate() const noexcept {
  return count > 0 ? static_cast<double>(successes) / static_cast<double>(count)
                   : 0.0;
}

Interval Binomial::wilson_interval(double z) const noexcept {
  if (count == 0) return {0.0, 1.0};
  const double n = static_cast<double>(count);
  const double p = rate();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  // Clamp: analytically the bounds are inside [0, 1], but at p ∈ {0, 1}
  // rounding can push them out by ~1 ulp.
  return {std::max(0.0, centre - half), std::min(1.0, centre + half)};
}

}  // namespace samurai::campaign
