#include "campaign/json.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace samurai::campaign {

std::string format_double(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

namespace {

std::string quote(const std::string& text) {
  std::string out = "\"";
  for (char ch : text) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

}  // namespace

void JsonWriter::add(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, quote(value));
}

void JsonWriter::add(const std::string& key, const char* value) {
  add(key, std::string(value));
}

void JsonWriter::add(const std::string& key, double value) {
  fields_.emplace_back(key, format_double(value));
}

void JsonWriter::add(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
}

void JsonWriter::add_u64(const std::string& key, std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%" PRIu64, value);
  fields_.emplace_back(key, buffer);
}

void JsonWriter::add_raw(const std::string& key, const std::string& raw) {
  fields_.emplace_back(key, raw);
}

std::string JsonWriter::str() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : fields_) {
    if (!first) out += ", ";
    first = false;
    out += quote(key) + ": " + value;
  }
  out += "}";
  return out;
}

namespace {

void skip_space(const std::string& text, std::size_t& pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
}

[[noreturn]] void fail(const std::string& what, std::size_t pos) {
  throw std::runtime_error("campaign json: " + what + " at offset " +
                           std::to_string(pos));
}

std::string parse_quoted(const std::string& text, std::size_t& pos) {
  if (pos >= text.size() || text[pos] != '"') fail("expected '\"'", pos);
  ++pos;
  std::string out;
  while (pos < text.size() && text[pos] != '"') {
    if (text[pos] == '\\') {
      ++pos;
      if (pos >= text.size()) fail("dangling escape", pos);
    }
    out.push_back(text[pos++]);
  }
  if (pos >= text.size()) fail("unterminated string", pos);
  ++pos;  // closing quote
  return out;
}

}  // namespace

JsonObject JsonObject::parse(const std::string& text) {
  JsonObject object;
  std::size_t pos = 0;
  skip_space(text, pos);
  if (pos >= text.size() || text[pos] != '{') fail("expected '{'", pos);
  ++pos;
  skip_space(text, pos);
  if (pos < text.size() && text[pos] == '}') return object;
  for (;;) {
    skip_space(text, pos);
    const std::string key = parse_quoted(text, pos);
    skip_space(text, pos);
    if (pos >= text.size() || text[pos] != ':') fail("expected ':'", pos);
    ++pos;
    skip_space(text, pos);
    if (pos >= text.size()) fail("missing value", pos);
    if (text[pos] == '"') {
      object.values_[key] = parse_quoted(text, pos);
      object.quoted_[key] = true;
    } else {
      // Bare token: number / bool / null. Read until the next separator.
      std::size_t start = pos;
      int depth = 0;  // tolerate nested arrays stored as raw values
      while (pos < text.size()) {
        const char ch = text[pos];
        if (ch == '[' || ch == '{') ++depth;
        if (ch == ']' || ch == '}') {
          if (depth == 0) break;
          --depth;
        }
        if (depth == 0 && ch == ',') break;
        ++pos;
      }
      std::string token = text.substr(start, pos - start);
      while (!token.empty() &&
             std::isspace(static_cast<unsigned char>(token.back()))) {
        token.pop_back();
      }
      if (token.empty()) fail("empty value", start);
      object.values_[key] = token;
      object.quoted_[key] = false;
    }
    skip_space(text, pos);
    if (pos >= text.size()) fail("unterminated object", pos);
    if (text[pos] == ',') {
      ++pos;
      continue;
    }
    if (text[pos] == '}') break;
    fail("expected ',' or '}'", pos);
  }
  return object;
}

bool JsonObject::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string JsonObject::get_string(const std::string& key,
                                   std::string fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::move(fallback) : it->second;
}

double JsonObject::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (it->second == "null") return fallback;  // non-finite, see format_double
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str()) {
    throw std::runtime_error("campaign json: key '" + key +
                             "' is not a number: " + it->second);
  }
  return value;
}

std::uint64_t JsonObject::get_u64(const std::string& key,
                                  std::uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str()) {
    throw std::runtime_error("campaign json: key '" + key +
                             "' is not an integer: " + it->second);
  }
  return value;
}

bool JsonObject::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (it->second == "true") return true;
  if (it->second == "false") return false;
  throw std::runtime_error("campaign json: key '" + key +
                           "' is not a bool: " + it->second);
}

}  // namespace samurai::campaign
