#include "campaign/shard.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "campaign/json.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace samurai::campaign {

ShardSpec shard_spec(const Manifest& manifest, std::uint64_t shard_index) {
  if (shard_index >= manifest.shard_count()) {
    throw std::out_of_range("shard_spec: shard index past campaign end");
  }
  ShardSpec spec;
  spec.index = shard_index;
  spec.first = shard_index * manifest.shard_size;
  spec.count = std::min(manifest.shard_size, manifest.budget - spec.first);
  return spec;
}

sram::MethodologyConfig cell_config_from(const Manifest& manifest) {
  sram::MethodologyConfig cell;
  cell.tech = physics::technology(manifest.node);
  if (manifest.v_dd > 0.0) cell.tech.v_dd = manifest.v_dd;
  cell.sizing.extra_node_cap = manifest.extra_node_cap;
  cell.timing.period = manifest.period;
  std::vector<int> bits;
  for (char ch : manifest.bits) {
    if (ch == '0' || ch == '1') bits.push_back(ch - '0');
  }
  cell.ops = sram::ops_from_bits(bits);
  cell.rtn_scale = manifest.rtn_scale;
  return cell;
}

sram::ImportanceConfig importance_config_from(const Manifest& manifest) {
  sram::ImportanceConfig config;
  config.cell = cell_config_from(manifest);
  config.sigma_vt = manifest.sigma_vt;
  for (int m = 0; m < 6; ++m) {
    const double shift = manifest.shift[static_cast<size_t>(m)];
    if (shift != 0.0) config.shift["M" + std::to_string(m + 1)] = shift;
  }
  config.samples = manifest.budget;
  config.seed = manifest.seed;
  config.count_slow_as_fail = manifest.count_slow_as_fail;
  config.with_rtn = manifest.with_rtn;
  config.threads = manifest.threads;
  return config;
}

sram::ArrayConfig array_config_from(const Manifest& manifest) {
  sram::ArrayConfig config;
  config.cell = cell_config_from(manifest);
  // An explicit R×C footprint pins the cell population; otherwise one cell
  // per sample (budget cells), the historical behaviour.
  config.num_cells =
      manifest.rows > 0 ? manifest.rows * manifest.cols : manifest.budget;
  config.sigma_vt = manifest.sigma_vt;
  config.seed = manifest.seed;
  config.threads = manifest.threads;
  return config;
}

sram::VminConfig vmin_config_from(const Manifest& manifest,
                                  std::uint64_t replica) {
  sram::VminConfig config;
  config.cell = cell_config_from(manifest);
  // Each replica is an independent trap-population universe: its cell seed
  // comes from the campaign root stream, exactly like a sample index.
  config.cell.seed = util::Rng(manifest.seed).split(replica + 1).next_u64();
  config.v_lo = manifest.v_lo;
  config.v_hi = manifest.v_hi;
  config.resolution = manifest.resolution;
  config.rtn_seeds = manifest.rtn_seeds;
  config.count_slow_as_fail = manifest.count_slow_as_fail;
  config.threads = 1;  // parallelism lives at the shard level
  return config;
}

namespace {

/// Per-sample outcome, generic across campaign kinds. Slots are written by
/// the parallel map and reduced serially in index order.
struct SampleOutcome {
  double weight = 1.0;
  bool failed = false;
  bool nominal_failed = false;
  bool slow = false;
  bool has_value = false;
  double value = 0.0;
};

SampleOutcome evaluate(const Manifest& manifest,
                       const sram::ImportanceConfig& importance,
                       const sram::ArrayConfig& array, std::uint64_t global) {
  SampleOutcome outcome;
  switch (manifest.kind) {
    case CampaignKind::kImportance: {
      const auto sample = sram::evaluate_importance_sample(
          importance, static_cast<std::size_t>(global));
      outcome.weight = sample.weight;
      outcome.failed = sample.failed;
      break;
    }
    case CampaignKind::kArrayYield: {
      const auto cell = sram::simulate_array_cell(
          array, static_cast<std::size_t>(global));
      outcome.failed = cell.rtn_error && !cell.nominal_error;  // RTN-only
      outcome.nominal_failed = cell.nominal_error;
      outcome.slow = cell.rtn_slow;
      outcome.has_value = true;
      outcome.value = static_cast<double>(cell.total_traps);
      break;
    }
    case CampaignKind::kVmin: {
      const auto result = sram::find_vmin(vmin_config_from(manifest, global));
      outcome.failed = !result.rtn_found;
      outcome.nominal_failed = !result.nominal_found;
      outcome.has_value = result.rtn_found;
      outcome.value = result.rtn_found ? result.vmin_rtn : 0.0;
      break;
    }
  }
  return outcome;
}

}  // namespace

ShardResult run_shard(const Manifest& manifest, const ShardSpec& spec) {
  const auto start = std::chrono::steady_clock::now();
  const spice::SolverStats stats_before = spice::solver_stats_snapshot();
  const core::UniformisationStats rtn_before =
      core::uniformisation_stats_snapshot();
  const sram::ImportanceConfig importance = importance_config_from(manifest);
  const sram::ArrayConfig array = array_config_from(manifest);

  std::vector<SampleOutcome> outcomes(static_cast<std::size_t>(spec.count));
  if (manifest.kind == CampaignKind::kImportance && manifest.batch > 1) {
    // Batched importance path: consecutive global indices are grouped into
    // lanes of one lock-step transient each. Each group writes only its
    // own outcome slots and a sample's verdict is independent of its
    // group-mates (all lanes share one breakpoint set, so the step plan
    // never depends on the grouping) — the thread-count and shard-size
    // independence of the scalar path carries over.
    const auto batch = static_cast<std::size_t>(manifest.batch);
    const auto count = static_cast<std::size_t>(spec.count);
    const std::size_t groups = (count + batch - 1) / batch;
    util::parallel_for_indexed(
        groups,
        [&](std::size_t g) {
          const std::size_t lo = g * batch;
          const std::size_t n = std::min(batch, count - lo);
          const auto samples = sram::evaluate_importance_batch(
              importance, static_cast<std::size_t>(spec.first) + lo, n);
          for (std::size_t j = 0; j < n; ++j) {
            outcomes[lo + j].weight = samples[j].weight;
            outcomes[lo + j].failed = samples[j].failed;
          }
        },
        static_cast<std::size_t>(manifest.threads));
  } else {
    util::parallel_for_indexed(
        static_cast<std::size_t>(spec.count),
        [&](std::size_t n) {
          outcomes[n] = evaluate(manifest, importance, array, spec.first + n);
        },
        static_cast<std::size_t>(manifest.threads));
  }

  ShardResult result;
  result.index = spec.index;
  result.samples = spec.count;
  for (const auto& outcome : outcomes) {
    result.weighted.add(outcome.weight, outcome.failed);
    result.fails.add(outcome.failed);
    result.nominal_fails.add(outcome.nominal_failed);
    result.slow.add(outcome.slow);
    if (outcome.has_value) result.value.add(outcome.value);
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Shards run one at a time, so the snapshot delta attributes exactly this
  // shard's solver work (the atomic registry already folded every worker).
  result.solver = spice::solver_stats_snapshot().since(stats_before);
  result.rtn = core::uniformisation_stats_snapshot().since(rtn_before);
  return result;
}

std::string ShardResult::to_json() const {
  JsonWriter json;
  json.add_u64("shard", index);
  json.add_u64("samples", samples);
  // Only service workers stamp an identity; single-process ledger lines
  // stay byte-identical to the pre-service format.
  if (!worker.empty()) json.add("worker", worker);
  json.add_u64("w_count", weighted.count);
  json.add_u64("w_failures", weighted.failures);
  json.add("w_sum", weighted.weight_sum);
  json.add("w_sq_sum", weighted.weight_sq_sum);
  json.add("w_fail_sum", weighted.fail_weight_sum);
  json.add("w_fail_sq_sum", weighted.fail_weight_sq_sum);
  json.add_u64("fail_count", fails.count);
  json.add_u64("fail_successes", fails.successes);
  json.add_u64("nominal_count", nominal_fails.count);
  json.add_u64("nominal_successes", nominal_fails.successes);
  json.add_u64("slow_count", slow.count);
  json.add_u64("slow_successes", slow.successes);
  json.add_u64("value_count", value.count);
  json.add("value_mean", value.mean);
  json.add("value_m2", value.m2);
  json.add("wall_seconds", wall_seconds);
  json.add_u64("nw_iterations", solver.newton_iterations);
  json.add_u64("nw_factorizations", solver.lu_factorizations);
  json.add_u64("nw_solves", solver.lu_solves);
  json.add_u64("nw_bypass_hits", solver.bypass_hits);
  json.add_u64("nw_device_loads", solver.device_loads);
  json.add_u64("nw_cache_hits", solver.linear_cache_hits);
  json.add_u64("nw_steps_accepted", solver.steps_accepted);
  json.add_u64("nw_steps_rejected", solver.steps_rejected);
  json.add_u64("nw_transients", solver.transients);
  json.add_u64("nw_workspace_allocations", solver.workspace_allocations);
  json.add_u64("sp_symbolic_analyses", solver.sp_symbolic_analyses);
  json.add_u64("sp_numeric_refactors", solver.sp_numeric_refactors);
  json.add_u64("sp_solves", solver.sp_solves);
  json.add_u64("bt_batches", solver.bt_batches);
  json.add_u64("bt_lanes", solver.bt_lanes);
  json.add_u64("bt_steps", solver.bt_steps);
  json.add_u64("ap_elided_loads", solver.ap_elided_loads);
  json.add_u64("ap_partial_refactors", solver.ap_partial_refactors);
  json.add_u64("ap_rows_skipped", solver.ap_rows_skipped);
  json.add_u64("ap_folded_cells", solver.ap_folded_cells);
  json.add_u64("rtn_candidates", rtn.candidates);
  json.add_u64("rtn_accepted", rtn.accepted);
  json.add_u64("rtn_segments", rtn.segments);
  json.add_u64("rtn_rng_refills", rtn.rng_refills);
  json.add("rtn_envelope_integral", rtn.envelope_integral);
  json.add("rtn_fixed_bound_integral", rtn.fixed_bound_integral);
  return json.str();
}

ShardResult ShardResult::from_json(const std::string& line) {
  const JsonObject json = JsonObject::parse(line);
  ShardResult result;
  result.index = json.get_u64("shard", 0);
  result.samples = json.get_u64("samples", 0);
  result.worker = json.get_string("worker", "");
  result.weighted.count = json.get_u64("w_count", 0);
  result.weighted.failures = json.get_u64("w_failures", 0);
  result.weighted.weight_sum = json.get_double("w_sum", 0.0);
  result.weighted.weight_sq_sum = json.get_double("w_sq_sum", 0.0);
  result.weighted.fail_weight_sum = json.get_double("w_fail_sum", 0.0);
  result.weighted.fail_weight_sq_sum = json.get_double("w_fail_sq_sum", 0.0);
  result.fails.count = json.get_u64("fail_count", 0);
  result.fails.successes = json.get_u64("fail_successes", 0);
  result.nominal_fails.count = json.get_u64("nominal_count", 0);
  result.nominal_fails.successes = json.get_u64("nominal_successes", 0);
  result.slow.count = json.get_u64("slow_count", 0);
  result.slow.successes = json.get_u64("slow_successes", 0);
  result.value.count = json.get_u64("value_count", 0);
  result.value.mean = json.get_double("value_mean", 0.0);
  result.value.m2 = json.get_double("value_m2", 0.0);
  result.wall_seconds = json.get_double("wall_seconds", 0.0);
  // Solver counters default to zero so pre-counter ledgers still parse.
  result.solver.newton_iterations = json.get_u64("nw_iterations", 0);
  result.solver.lu_factorizations = json.get_u64("nw_factorizations", 0);
  result.solver.lu_solves = json.get_u64("nw_solves", 0);
  result.solver.bypass_hits = json.get_u64("nw_bypass_hits", 0);
  result.solver.device_loads = json.get_u64("nw_device_loads", 0);
  result.solver.linear_cache_hits = json.get_u64("nw_cache_hits", 0);
  result.solver.steps_accepted = json.get_u64("nw_steps_accepted", 0);
  result.solver.steps_rejected = json.get_u64("nw_steps_rejected", 0);
  result.solver.transients = json.get_u64("nw_transients", 0);
  result.solver.workspace_allocations =
      json.get_u64("nw_workspace_allocations", 0);
  // Sparse-engine counters arrived after the nw_* block; zero-defaulting
  // keeps dense-era ledgers parseable (their sparse share really is zero).
  result.solver.sp_symbolic_analyses = json.get_u64("sp_symbolic_analyses", 0);
  result.solver.sp_numeric_refactors =
      json.get_u64("sp_numeric_refactors", 0);
  result.solver.sp_solves = json.get_u64("sp_solves", 0);
  // Batched-engine counters default to zero so scalar-era ledgers still
  // parse (their batched share really is zero).
  result.solver.bt_batches = json.get_u64("bt_batches", 0);
  result.solver.bt_lanes = json.get_u64("bt_lanes", 0);
  result.solver.bt_steps = json.get_u64("bt_steps", 0);
  // Activity-partition counters default to zero so unpartitioned-era
  // ledgers still parse (their partitioned share really is zero).
  result.solver.ap_elided_loads = json.get_u64("ap_elided_loads", 0);
  result.solver.ap_partial_refactors =
      json.get_u64("ap_partial_refactors", 0);
  result.solver.ap_rows_skipped = json.get_u64("ap_rows_skipped", 0);
  result.solver.ap_folded_cells = json.get_u64("ap_folded_cells", 0);
  // Sampler counters default to zero so pre-counter ledgers still parse.
  result.rtn.candidates = json.get_u64("rtn_candidates", 0);
  result.rtn.accepted = json.get_u64("rtn_accepted", 0);
  result.rtn.segments = json.get_u64("rtn_segments", 0);
  result.rtn.rng_refills = json.get_u64("rtn_rng_refills", 0);
  result.rtn.envelope_integral = json.get_double("rtn_envelope_integral", 0.0);
  result.rtn.fixed_bound_integral =
      json.get_double("rtn_fixed_bound_integral", 0.0);
  return result;
}

}  // namespace samurai::campaign
