// The campaign runner: shard loop, streaming fold, early stopping,
// checkpointing and resume.
//
// Execution model: shards run one after another (samples within a shard
// fan out on the shared executor); after each shard the runner folds the
// shard's accumulators into the campaign state *in shard order*, writes
// the checkpoint, and evaluates the sequential stopping rule. Because the
// fold order is fixed and shard contents depend only on (manifest, shard
// index), a campaign killed after any shard and resumed from its ledger
// reproduces the uninterrupted run bit-identically — including where the
// stopping rule fires.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include <vector>

#include "campaign/accumulator.hpp"
#include "campaign/manifest.hpp"
#include "campaign/shard.hpp"

namespace samurai::campaign {

class JsonWriter;

struct RunOptions {
  /// Checkpoint directory; empty = run in memory (no resume possible).
  std::string dir;
  /// Execute at most this many *new* shards this invocation (0 = no cap).
  /// Used to simulate a kill in tests and to budget long sessions.
  std::uint64_t max_shards_this_run = 0;
  /// Stream one progress line per shard (nullptr = silent).
  std::ostream* progress = nullptr;
};

struct CampaignResult {
  Manifest manifest;
  std::uint64_t shards_done = 0;
  std::uint64_t samples_done = 0;
  bool complete = false;       ///< budget exhausted or early-stopped
  bool stopped_early = false;  ///< sequential rule fired below budget
  std::uint64_t budget_saved = 0;  ///< budget - samples_done when stopped
  double wall_seconds = 0.0;       ///< summed shard wall time (ledger)
  spice::SolverStats solver;       ///< summed per-shard solver counters
  core::UniformisationStats rtn;   ///< summed per-shard sampler counters

  // Folded streaming state (all kinds; unused accumulators stay empty).
  WeightedFailure weighted;
  Binomial fails;
  Binomial nominal_fails;
  Binomial slow;
  Welford value;

  // Kind-primary estimate: importance → weighted failure probability,
  // array-yield → RTN-only bit-error rate (Wilson CI), vmin → mean V_min.
  double estimate = 0.0;
  double standard_error = 0.0;
  Interval ci;
  double relative_half_width = 0.0;  ///< ci half-width / estimate (inf if 0)
  double effective_sample_size = 0.0;

  /// state.json payload / machine-readable summary line.
  std::string to_json() const;
  /// The same fields appended to a caller-owned writer, so composed
  /// documents (the service's status.json) can extend rather than wrap.
  void write_fields(JsonWriter& json) const;
};

/// Fold `ledger` (as returned by Checkpoint::load_ledger: index-sorted,
/// deduplicated) without executing anything. Folds the *contiguous* shard
/// prefix from shard 0 — never past a gap left by a still-running or dead
/// worker — re-applying the sequential stopping rule at each shard, so
/// the estimate, CI and stopping decision are bit-identical to the
/// single-process run over the same prefix regardless of which workers
/// appended which lines in which order.
CampaignResult fold_ledger(const Manifest& manifest,
                           const std::vector<ShardResult>& ledger);

/// Run `manifest` from scratch. With a checkpoint dir the manifest is
/// persisted and every shard is journalled; an existing ledger in the dir
/// is an error (resume instead).
CampaignResult run_campaign(const Manifest& manifest,
                            const RunOptions& options = {});

/// Continue the campaign in `options.dir` from its last completed shard.
/// Completed shards are re-folded from the ledger (never re-executed).
CampaignResult resume_campaign(const RunOptions& options);

/// Fold the ledger without executing anything: the current state of a
/// (possibly running or interrupted) campaign.
CampaignResult campaign_status(const std::string& dir);

}  // namespace samurai::campaign
