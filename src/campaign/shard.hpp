// Campaign shards: the unit of execution, checkpointing and resumption.
//
// A campaign's sample budget [0, budget) is cut into fixed-size shards;
// shard i covers the contiguous global index range [i·S, min((i+1)·S, N)).
// The determinism contract is inherited from the library's executor rule
// (DESIGN.md §8): sample n depends only on (manifest, n) through
// `Rng(seed).split(n + 1)`, so the shard partition — like the thread
// schedule — can never change a result, only when it is computed. That is
// what lets a resumed campaign replay completed shards from the ledger and
// continue bit-identically to an uninterrupted run.
#pragma once

#include <cstdint>
#include <string>

#include "campaign/accumulator.hpp"
#include "campaign/manifest.hpp"
#include "core/uniformisation.hpp"
#include "spice/analysis.hpp"
#include "sram/array.hpp"
#include "sram/importance.hpp"
#include "sram/vmin.hpp"

namespace samurai::campaign {

struct ShardSpec {
  std::uint64_t index = 0;  ///< shard number
  std::uint64_t first = 0;  ///< first global sample index
  std::uint64_t count = 0;  ///< samples in this shard
};

/// The shard range for `shard_index` of `manifest` (last shard may be
/// partial). Throws std::out_of_range past the end.
ShardSpec shard_spec(const Manifest& manifest, std::uint64_t shard_index);

/// Streaming result of one shard: every campaign kind folds into the same
/// accumulator set (unused ones stay empty), which keeps the ledger schema
/// uniform. Accumulation within a shard is serial in global sample order.
struct ShardResult {
  std::uint64_t index = 0;
  std::uint64_t samples = 0;
  /// Campaign-service worker that ran the shard ("" for single-process
  /// runs; the coordinator's per-worker throughput view groups by this).
  /// Attribution only — never estimator state.
  std::string worker;
  WeightedFailure weighted;  ///< importance: LR-weighted failures
  Binomial fails;          ///< primary Bernoulli (array: RTN-only errors;
                           ///< vmin: replicas with no RTN V_min in range)
  Binomial nominal_fails;  ///< array: nominal errors; vmin: no nominal V_min
  Binomial slow;           ///< array: slow cells
  Welford value;           ///< vmin: V_min_rtn (V); array: traps per cell
  double wall_seconds = 0.0;  ///< observability only; not estimator state
  /// SPICE solver work done by this shard (process-wide snapshot delta;
  /// valid because shards execute one at a time). Observability only.
  spice::SolverStats solver;
  /// Algorithm-1 sampler work done by this shard (same snapshot-delta
  /// scheme; `rtn_*` ledger keys). Observability only.
  core::UniformisationStats rtn;

  std::string to_json() const;  ///< one ledger line
  static ShardResult from_json(const std::string& line);  ///< throws
};

/// Execute one shard: map samples on the shared executor with
/// `manifest.threads` workers, then reduce in index order.
ShardResult run_shard(const Manifest& manifest, const ShardSpec& spec);

// Manifest → concrete workload configs (used by run_shard and exposed so
// tests and adopters can cross-check against the in-process estimators).
sram::MethodologyConfig cell_config_from(const Manifest& manifest);
sram::ImportanceConfig importance_config_from(const Manifest& manifest);
sram::ArrayConfig array_config_from(const Manifest& manifest);
/// Config for V_min replica `replica` (its own trap-population stream).
sram::VminConfig vmin_config_from(const Manifest& manifest,
                                  std::uint64_t replica);

}  // namespace samurai::campaign
