// Atomic campaign checkpoints.
//
// A campaign directory holds four artifacts:
//   manifest.json — the job description, written once at `run` start;
//   shards.jsonl  — the shard ledger, one flat-JSON line appended per
//                   completed shard (the source of truth on resume);
//   state.json    — the folded estimator state and status (a convenience
//                   summary for `status`; always derivable from the ledger);
//   leases/       — the campaign service's per-shard lease files
//                   (service/lease.hpp), absent for single-process runs.
//
// Whole-file artifacts are replaced via unique-temp + fsync + rename, so
// a kill at any instant leaves either the previous consistent version or
// the new one — never a torn file — even with many processes writing the
// same path. The ledger is append-only: each completed shard is one
// O_APPEND write of one newline-terminated line, which multiple worker
// processes can interleave safely (whole lines, never bytes). Loading
// sorts lines by shard index and drops duplicates, so the fold — always
// in shard-index order from shard 0 — is bit-identical to the
// uninterrupted single-process run no matter which workers wrote which
// lines in which order.
#pragma once

#include <string>
#include <vector>

#include "campaign/manifest.hpp"
#include "campaign/shard.hpp"

namespace samurai::campaign {

/// Atomically replace `path` with `content` (unique temp file + fsync +
/// rename; safe under concurrent writers of the same path).
/// Throws std::runtime_error on I/O failure.
void write_file_atomic(const std::string& path, const std::string& content);

/// Read a whole file. Throws std::runtime_error if unreadable.
std::string read_file(const std::string& path);

class Checkpoint {
 public:
  explicit Checkpoint(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const noexcept { return dir_; }
  std::string manifest_path() const { return dir_ + "/manifest.json"; }
  std::string ledger_path() const { return dir_ + "/shards.jsonl"; }
  std::string state_path() const { return dir_ + "/state.json"; }
  /// The coordinator's machine-readable endpoint (svc_* keys + results).
  std::string status_path() const { return dir_ + "/status.json"; }
  /// Per-shard lease files for the campaign service (service/lease.hpp).
  std::string leases_dir() const { return dir_ + "/leases"; }

  /// Create the directory (parents included) and write the manifest.
  /// Throws std::runtime_error if a ledger already exists (an interrupted
  /// campaign must be resumed, not silently restarted).
  void init(const Manifest& manifest) const;

  bool has_manifest() const;
  bool has_ledger() const;
  Manifest load_manifest() const;  ///< throws if missing/invalid

  /// Completed shards sorted by index, duplicates dropped (first line
  /// wins; re-runs of a reclaimed shard are bit-identical anyway, so a
  /// duplicate can never change the fold). Lines that are not complete,
  /// parseable shard records — a torn tail from a writer killed
  /// mid-append, or a fenced-off fragment from a later append's repair —
  /// are skipped with a warning on stderr, never silently folded; the
  /// affected shard simply counts as not-yet-run and is executed again.
  std::vector<ShardResult> load_ledger() const;

  /// Append one completed shard to the ledger: a single durable O_APPEND
  /// write, safe under concurrent appenders (other worker processes).
  void append_ledger(const ShardResult& shard) const;

  void store_state(const std::string& state_json) const;
  std::string load_state() const;  ///< "" if absent

 private:
  std::string dir_;
};

}  // namespace samurai::campaign
