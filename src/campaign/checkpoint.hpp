// Atomic campaign checkpoints.
//
// A campaign directory holds three artifacts:
//   manifest.json — the job description, written once at `run` start;
//   shards.jsonl  — the shard ledger, one flat-JSON line per completed
//                   shard in index order (the source of truth on resume);
//   state.json    — the folded estimator state and status (a convenience
//                   summary for `status`; always derivable from the ledger).
//
// Every file is replaced via write-to-temp + rename, so a kill at any
// instant leaves either the previous consistent version or the new one —
// never a torn file. Resume re-folds the ledger in shard order; because
// doubles are serialised with round-trip precision, the restored estimator
// state is bit-identical to the state the uninterrupted run had.
#pragma once

#include <string>
#include <vector>

#include "campaign/manifest.hpp"
#include "campaign/shard.hpp"

namespace samurai::campaign {

/// Atomically replace `path` with `content` (temp file + rename).
/// Throws std::runtime_error on I/O failure.
void write_file_atomic(const std::string& path, const std::string& content);

/// Read a whole file. Throws std::runtime_error if unreadable.
std::string read_file(const std::string& path);

class Checkpoint {
 public:
  explicit Checkpoint(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const noexcept { return dir_; }
  std::string manifest_path() const { return dir_ + "/manifest.json"; }
  std::string ledger_path() const { return dir_ + "/shards.jsonl"; }
  std::string state_path() const { return dir_ + "/state.json"; }

  /// Create the directory (parents included) and write the manifest.
  /// Throws std::runtime_error if a ledger already exists (an interrupted
  /// campaign must be resumed, not silently restarted).
  void init(const Manifest& manifest) const;

  bool has_manifest() const;
  bool has_ledger() const;
  Manifest load_manifest() const;  ///< throws if missing/invalid

  /// Completed shards in ledger order (empty if no ledger yet). Throws on
  /// a malformed line — a corrupt ledger must not silently truncate.
  std::vector<ShardResult> load_ledger() const;

  /// Atomically rewrite the full ledger (small: one line per shard).
  void store_ledger(const std::vector<ShardResult>& shards) const;

  void store_state(const std::string& state_json) const;
  std::string load_state() const;  ///< "" if absent

 private:
  std::string dir_;
};

}  // namespace samurai::campaign
