// Campaign manifests: the serialisable description of one Monte-Carlo
// yield campaign.
//
// A manifest is deliberately *flat* — technology node, pattern bits and
// sweep knobs rather than a full `MethodologyConfig` — so it can round-trip
// through JSON and be diffed by eye. The runner expands it into the
// concrete `sram::*Config` deterministically (shard.cpp), which is what
// makes "same manifest ⇒ same campaign, bit for bit" a checkable contract.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace samurai::campaign {

enum class CampaignKind {
  kImportance,  ///< per-sample importance-sampled write-failure estimate
  kArrayYield,  ///< per-cell array Monte-Carlo (bit-error rate)
  kVmin,        ///< per-replica V_min sweeps (margin distribution)
};

std::string to_string(CampaignKind kind);
CampaignKind kind_from_string(const std::string& name);  ///< throws

struct Manifest {
  CampaignKind kind = CampaignKind::kImportance;
  std::string name = "campaign";
  std::uint64_t seed = 1;
  std::uint64_t budget = 1000;    ///< total sample budget
  std::uint64_t shard_size = 100; ///< samples per shard (checkpoint grain)
  std::uint64_t threads = 1;      ///< worker threads within a shard
  /// Monte-Carlo lanes per batched transient call. 1 = scalar samples.
  /// > 1 routes each group of `batch` consecutive sample indices through
  /// the lock-step batched fixed-grid engine (spice/batch.hpp); only valid
  /// for kImportance with with_rtn = false (the nominal-only workload whose
  /// lanes share one topology and breakpoint set). Sample outcomes are
  /// independent of the grouping, so `batch` is a throughput knob — but the
  /// batched path integrates on the fixed grid, so estimates match scalar
  /// fixed-grid runs, not adaptive-step ones.
  std::uint64_t batch = 1;

  // Sequential early stopping: stop once the relative confidence-interval
  // half-width (z·SE / estimate) drops to the target. 0 = run the budget.
  double target_rel_half_width = 0.0;
  double confidence_z = 1.959963984540054;  ///< 95 % two-sided
  std::uint64_t min_samples = 0;  ///< never stop before this many samples

  // Workload knobs, mirroring what the benches/examples configure.
  std::string node = "90nm";
  double v_dd = 0.0;               ///< 0 = node default
  std::string bits = "10";         ///< write pattern
  double rtn_scale = 30.0;
  double extra_node_cap = 40e-15;  ///< F
  double period = 1e-9;            ///< s, per pattern op
  double sigma_vt = 0.03;          ///< V, per-transistor variation (1σ)
  std::array<double, 6> shift{};   ///< mean shifts for M1..M6, V
  bool count_slow_as_fail = false;
  bool with_rtn = true;

  // Array footprint (kArrayYield). 0/0 = derive the population from the
  // sample budget (one cell per sample, the historical behaviour). When
  // set, the campaign samples cells of a fixed R×C array, so the budget
  // must not exceed rows·cols. `activity` names the partition mode used
  // for any array-level transient work ("off" | "elide" | "schur");
  // validated here so a typo fails at manifest time, not mid-campaign.
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::string activity = "schur";

  // kVmin only.
  double v_lo = 0.7;
  double v_hi = 0.0;               ///< 0 = node default V_dd
  double resolution = 0.025;
  std::uint64_t rtn_seeds = 1;     ///< trap draws per supply point

  std::uint64_t shard_count() const;
  /// Throws std::invalid_argument if the manifest cannot run.
  void validate() const;

  std::string to_json() const;
  static Manifest from_json(const std::string& text);  ///< throws
};

}  // namespace samurai::campaign
