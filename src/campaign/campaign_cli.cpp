// samurai_campaign — sharded, checkpointable Monte-Carlo yield campaigns.
//
//   samurai_campaign run    --dir out/ [--manifest m.json | flags...]
//   samurai_campaign resume --dir out/ [--max-shards K]
//   samurai_campaign status --dir out/
//   samurai_campaign init   --dir out/ [--manifest m.json | flags...]
//   samurai_campaign work   --dir out/ [--worker-id ID] [--lease-ttl S]
//   samurai_campaign serve  --dir out/ [--lease-ttl S] [--watch]
//
// `run` starts a campaign described by a manifest file or by flags
// (--kind importance|array-yield|vmin, --samples, --shard, --batch,
// --seed, --threads, --target-rhw, --min-samples, --node, --vdd, --bits,
// --scale, --sigma-vt, --shift, --rtn-seeds, --v-lo, --v-hi,
// --resolution, --nominal-only, --slow-as-fail, --name, --rows, --cols,
// --activity off|elide|schur). --rows/--cols pin the array-yield cell
// population to an R×C footprint; non-positive values and unknown
// activity modes are rejected with usage (exit 2). --batch K > 1
// runs nominal-only importance samples through the lock-step batched
// transient engine, K lanes at a time (requires --nominal-only). Without --dir the campaign runs
// in memory (no checkpoint, no resume). Every subcommand ends with one
// machine-readable JSON summary line on stdout.
//
// The distributed service (DESIGN.md §14): `init` writes the manifest
// without running anything; any number of `work` processes then lease
// shards out of the shared directory and append results; `serve` reaps
// expired leases, folds progress and publishes status.json (`--watch`
// adds a live per-worker view). Errors and usage go to stderr; exit is
// non-zero whenever the requested command could not run.
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>

#include "campaign/checkpoint.hpp"
#include "campaign/manifest.hpp"
#include "campaign/runner.hpp"
#include "campaign/service/coordinator.hpp"
#include "campaign/service/worker.hpp"
#include "util/cli.hpp"

using namespace samurai;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: samurai_campaign run    --dir DIR [--manifest FILE | "
               "--kind importance|array-yield|vmin --samples N --shard S\n"
               "                               [--rows R --cols C] "
               "[--activity off|elide|schur] ...]\n"
               "       samurai_campaign resume --dir DIR [--max-shards K]\n"
               "       samurai_campaign status --dir DIR\n"
               "       samurai_campaign init   --dir DIR [--manifest FILE | "
               "flags as for run]\n"
               "       samurai_campaign work   --dir DIR [--worker-id ID] "
               "[--lease-ttl S] [--poll S] [--max-shards K] [--max-seconds S]\n"
               "       samurai_campaign serve  --dir DIR [--lease-ttl S] "
               "[--poll S] [--max-seconds S] [--watch]\n");
  return 2;
}

campaign::Manifest manifest_from_flags(const util::Cli& cli) {
  campaign::Manifest manifest;
  manifest.kind =
      campaign::kind_from_string(cli.get_string("kind", "importance"));
  manifest.name = cli.get_string("name", campaign::to_string(manifest.kind));
  manifest.seed = cli.get_seed("seed", 31);
  manifest.budget = static_cast<std::uint64_t>(cli.get_int("samples", 1000));
  manifest.shard_size = static_cast<std::uint64_t>(cli.get_int("shard", 100));
  manifest.batch = static_cast<std::uint64_t>(cli.get_count("batch", 1));
  manifest.threads = static_cast<std::uint64_t>(cli.get_int("threads", 1));
  manifest.target_rel_half_width = cli.get_double("target-rhw", 0.0);
  manifest.confidence_z = cli.get_double("confidence-z", manifest.confidence_z);
  manifest.min_samples =
      static_cast<std::uint64_t>(cli.get_int("min-samples", 0));
  manifest.node = cli.get_string("node", "90nm");
  manifest.v_dd = cli.get_double("vdd", 0.0);
  manifest.bits = cli.get_string("bits", "10");
  manifest.rtn_scale = cli.get_double("scale", 30.0);
  manifest.extra_node_cap = cli.get_double("node-cap", 40e-15);
  manifest.period = cli.get_double("period", 1e-9);
  manifest.sigma_vt = cli.get_double("sigma-vt", 0.03);
  // --shift biases the write-critical pass gates M1/M2 (the ladder the
  // importance bench uses); --shift-mK sets one device explicitly.
  const double shift = cli.get_double("shift", 0.0);
  if (shift != 0.0) manifest.shift[0] = manifest.shift[1] = shift;
  for (int m = 1; m <= 6; ++m) {
    manifest.shift[static_cast<size_t>(m - 1)] = cli.get_double(
        "shift-m" + std::to_string(m),
        manifest.shift[static_cast<size_t>(m - 1)]);
  }
  manifest.count_slow_as_fail = cli.has("slow-as-fail");
  manifest.with_rtn = !cli.has("nominal-only");
  manifest.v_lo = cli.get_double("v-lo", manifest.v_lo);
  manifest.v_hi = cli.get_double("v-hi", manifest.v_hi);
  manifest.resolution = cli.get_double("resolution", manifest.resolution);
  manifest.rtn_seeds =
      static_cast<std::uint64_t>(cli.get_int("rtn-seeds", 1));
  // --rows/--cols pin the array-yield cell population to an R×C footprint;
  // get_count rejects non-positive values loudly. --activity is validated
  // by Manifest::validate() (off | elide | schur).
  if (cli.has("rows")) {
    manifest.rows = static_cast<std::uint64_t>(cli.get_count("rows", 1));
  }
  if (cli.has("cols")) {
    manifest.cols = static_cast<std::uint64_t>(cli.get_count("cols", 1));
  }
  manifest.activity = cli.get_string("activity", manifest.activity);
  return manifest;
}

void print_summary(const campaign::CampaignResult& result) {
  std::printf(
      "campaign '%s' (%s): %s — %llu/%llu samples in %llu shards, "
      "wall %.2f s\n",
      result.manifest.name.c_str(),
      campaign::to_string(result.manifest.kind).c_str(),
      result.stopped_early ? "stopped early (CI target met)"
      : result.complete    ? "complete"
                           : "paused",
      static_cast<unsigned long long>(result.samples_done),
      static_cast<unsigned long long>(result.manifest.budget),
      static_cast<unsigned long long>(result.shards_done),
      result.wall_seconds);
  std::printf("  estimate %.6g  (std err %.3g, z=%.2f CI [%.6g, %.6g], "
              "rel half-width %.3g, ESS %.1f)\n",
              result.estimate, result.standard_error,
              result.manifest.confidence_z, result.ci.lo, result.ci.hi,
              result.relative_half_width, result.effective_sample_size);
  if (result.stopped_early) {
    std::printf("  budget saved: %llu of %llu samples (%.1f%%)\n",
                static_cast<unsigned long long>(result.budget_saved),
                static_cast<unsigned long long>(result.manifest.budget),
                100.0 * static_cast<double>(result.budget_saved) /
                    static_cast<double>(result.manifest.budget));
  }
  std::printf("%s\n", result.to_json().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    if (cli.positional().empty()) return usage();
    const std::string command = cli.positional().front();
    const std::string dir = cli.get_string("dir", "");

    campaign::RunOptions options;
    options.dir = dir;
    options.max_shards_this_run =
        static_cast<std::uint64_t>(cli.get_int("max-shards", 0));
    options.progress = cli.has("quiet") ? nullptr : &std::cerr;

    if (command == "run") {
      campaign::Manifest manifest;
      try {
        if (cli.has("manifest")) {
          manifest = campaign::Manifest::from_json(
              campaign::read_file(cli.get_string("manifest", "")));
        } else {
          manifest = manifest_from_flags(cli);
        }
        manifest.validate();
      } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "samurai_campaign: %s\n", error.what());
        return usage();
      }
      if (dir.empty()) {
        std::fprintf(stderr, "samurai_campaign: no --dir given; running "
                             "without checkpoints (resume unavailable)\n");
      }
      print_summary(campaign::run_campaign(manifest, options));
      return 0;
    }
    if (command == "resume") {
      if (dir.empty()) return usage();
      print_summary(campaign::resume_campaign(options));
      return 0;
    }
    if (command == "status") {
      if (dir.empty()) return usage();
      print_summary(campaign::campaign_status(dir));
      return 0;
    }
    if (command == "init") {
      if (dir.empty()) return usage();
      campaign::Manifest manifest;
      try {
        if (cli.has("manifest")) {
          manifest = campaign::Manifest::from_json(
              campaign::read_file(cli.get_string("manifest", "")));
        } else {
          manifest = manifest_from_flags(cli);
        }
        manifest.validate();
      } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "samurai_campaign: %s\n", error.what());
        return usage();
      }
      campaign::Checkpoint(dir).init(manifest);
      std::printf("%s\n", manifest.to_json().c_str());
      return 0;
    }
    if (command == "work") {
      if (dir.empty()) return usage();
      campaign::WorkerOptions worker;
      worker.dir = dir;
      worker.worker_id = cli.get_string("worker-id", "");
      worker.lease_ttl =
          cli.get_positive_double("lease-ttl", worker.lease_ttl);
      worker.poll_seconds = cli.get_positive_double("poll", worker.poll_seconds);
      worker.max_shards =
          static_cast<std::uint64_t>(cli.get_int("max-shards", 0));
      worker.max_wall_seconds = cli.get_double("max-seconds", 0.0);
      worker.progress = cli.has("quiet") ? nullptr : &std::cerr;
      const campaign::WorkerReport report = campaign::run_worker(worker);
      std::printf("%s\n", report.to_json().c_str());
      return report.timed_out ? 4 : 0;
    }
    if (command == "serve") {
      if (dir.empty()) return usage();
      campaign::ServeOptions serve;
      serve.dir = dir;
      serve.lease_ttl = cli.get_positive_double("lease-ttl", serve.lease_ttl);
      serve.poll_seconds =
          cli.get_positive_double("poll", serve.poll_seconds);
      serve.max_wall_seconds = cli.get_double("max-seconds", 0.0);
      serve.watch = cli.has("watch");
      serve.out = cli.has("quiet") ? nullptr : &std::cerr;
      const campaign::ServiceStatus status = campaign::serve_campaign(serve);
      std::printf("%s\n", status.to_json().c_str());
      print_summary(status.result);
      return status.result.complete ? 0 : 4;
    }
    std::fprintf(stderr, "samurai_campaign: unknown command '%s'\n",
                 command.c_str());
    return usage();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "samurai_campaign: %s\n", error.what());
    return 1;
  }
}
