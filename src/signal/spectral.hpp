// Spectral and correlation estimators used by the validation experiments
// (paper §IV-A): autocorrelation R(τ) of a sampled trace and the one-sided
// power spectral density S(f).
#pragma once

#include <cstddef>
#include <vector>

namespace samurai::signal {

struct Autocorrelation {
  std::vector<double> lags;    ///< seconds, starting at 0
  std::vector<double> values;  ///< A^2 (for a current trace)
};

struct Spectrum {
  std::vector<double> frequencies;  ///< Hz, DC excluded
  std::vector<double> density;      ///< one-sided PSD, A^2/Hz
};

/// Autocorrelation of uniformly sampled data via FFT.
/// `subtract_mean` gives the autocovariance (the paper's R(τ) of the RTN
/// *fluctuation*); `unbiased` divides lag k by (N-k) instead of N.
/// At most `max_lags` lags are returned (0 = N/2).
Autocorrelation autocorrelation(const std::vector<double>& samples, double dt,
                                bool subtract_mean = true, bool unbiased = true,
                                std::size_t max_lags = 0);

/// Welch PSD: `segment_length` samples per segment (power of two,
/// 0 = N/8 rounded to a power of two), 50% overlap, Hann window,
/// one-sided normalisation such that the integral of S over f equals the
/// signal variance (mean removed when `subtract_mean`).
Spectrum welch_psd(const std::vector<double>& samples, double dt,
                   std::size_t segment_length = 0, bool subtract_mean = true);

/// PSD via the Wiener-Khinchin theorem from an autocorrelation estimate:
/// S(f) = 2 ∫ R(τ) cos(2πfτ) dτ evaluated on the requested frequency grid.
/// This mirrors the paper's "compute S(f) numerically from R(τ)" step.
std::vector<double> psd_from_autocorrelation(const Autocorrelation& acf,
                                             const std::vector<double>& freqs);

}  // namespace samurai::signal
