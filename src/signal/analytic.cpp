#include "signal/analytic.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "physics/constants.hpp"

namespace samurai::signal {

double rts_fill_probability(const RtsParams& p) {
  const double total = p.lambda_c + p.lambda_e;
  if (!(total > 0.0)) throw std::invalid_argument("rts: zero total rate");
  return p.lambda_c / total;
}

double rts_variance(const RtsParams& p) {
  const double fill = rts_fill_probability(p);
  return p.delta_i * p.delta_i * fill * (1.0 - fill);
}

double rts_autocovariance(const RtsParams& p, double tau) {
  return rts_variance(p) * std::exp(-(p.lambda_c + p.lambda_e) * std::abs(tau));
}

double rts_psd(const RtsParams& p, double frequency) {
  const double total = p.lambda_c + p.lambda_e;
  const double omega = 2.0 * std::numbers::pi * frequency;
  return 4.0 * rts_variance(p) * total / (total * total + omega * omega);
}

double multi_rts_psd(const std::vector<RtsParams>& traps, double frequency) {
  double sum = 0.0;
  for (const auto& trap : traps) sum += rts_psd(trap, frequency);
  return sum;
}

double multi_rts_autocovariance(const std::vector<RtsParams>& traps, double tau) {
  double sum = 0.0;
  for (const auto& trap : traps) sum += rts_autocovariance(trap, tau);
  return sum;
}

double thermal_noise_psd(double temperature_k, double transconductance) {
  return (8.0 / 3.0) * physics::kBoltzmann * temperature_k * transconductance;
}

PowerLawFit fit_power_law(const std::vector<double>& freqs,
                          const std::vector<double>& psd,
                          bool constrain_slope_to_one) {
  if (freqs.size() != psd.size() || freqs.size() < 2) {
    throw std::invalid_argument("fit_power_law: bad inputs");
  }
  // Fit log10 S = a - b log10 f by least squares over positive samples.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (!(freqs[i] > 0.0) || !(psd[i] > 0.0)) continue;
    const double x = std::log10(freqs[i]);
    const double y = std::log10(psd[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) throw std::invalid_argument("fit_power_law: too few positive points");
  const double dn = static_cast<double>(n);
  PowerLawFit fit;
  if (constrain_slope_to_one) {
    fit.slope = 1.0;
    fit.amplitude = std::pow(10.0, (sy + sx) / dn);
  } else {
    const double denom = dn * sxx - sx * sx;
    if (std::abs(denom) < 1e-30) throw std::runtime_error("fit_power_law: singular");
    const double b = -(dn * sxy - sx * sy) / denom;
    const double a = (sy + b * sx) / dn;
    fit.slope = b;
    fit.amplitude = std::pow(10.0, a);
  }
  double ss = 0.0;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (!(freqs[i] > 0.0) || !(psd[i] > 0.0)) continue;
    const double model = std::log10(fit.amplitude) - fit.slope * std::log10(freqs[i]);
    const double r = std::log10(psd[i]) - model;
    ss += r * r;
  }
  fit.rms_log_error = std::sqrt(ss / dn);
  return fit;
}

}  // namespace samurai::signal
