// Closed-form stationary RTN expressions (paper refs [3], [5]) that the
// validation experiments compare against, plus the thermal-noise floor and
// the aggregate-1/f model used in Fig. 3.
#pragma once

#include <cstddef>
#include <vector>

namespace samurai::signal {

/// Stationary two-state RTS with capture rate λ_c (empty→filled),
/// emission rate λ_e (filled→empty) and current step ΔI (amps added while
/// the trap is filled).
struct RtsParams {
  double lambda_c;  ///< 1/s
  double lambda_e;  ///< 1/s
  double delta_i;   ///< A
};

/// Stationary filled probability λ_c / (λ_c + λ_e).
double rts_fill_probability(const RtsParams& p);

/// Variance of the stationary RTS current, ΔI² p (1-p).
double rts_variance(const RtsParams& p);

/// Autocovariance R(τ) = ΔI² p(1-p) e^{-(λ_c+λ_e)|τ|}.
double rts_autocovariance(const RtsParams& p, double tau);

/// One-sided Lorentzian PSD
///   S(f) = 4 ΔI² p(1-p) Λ / (Λ² + (2πf)²),  Λ = λ_c + λ_e,
/// normalised so ∫_0^∞ S df = variance.
double rts_psd(const RtsParams& p, double frequency);

/// Superposition of independent RTSs (total PSD of a multi-trap device at
/// fixed bias; used for the analytical curves of Fig. 3).
double multi_rts_psd(const std::vector<RtsParams>& traps, double frequency);
double multi_rts_autocovariance(const std::vector<RtsParams>& traps, double tau);

/// Thermal-noise PSD floor S_thermal = (8/3) k T g_m (paper §IV-A).
double thermal_noise_psd(double temperature_k, double transconductance);

/// Least-squares fit of log10 S = log10 K - slope·log10 f over the given
/// points; returns {K, slope}. With slope constrained to 1 this is the
/// analytic 1/f fit of Fig. 3.
struct PowerLawFit {
  double amplitude;  ///< K such that S(f) ≈ K / f^slope
  double slope;
  double rms_log_error;  ///< RMS residual in decades
};
PowerLawFit fit_power_law(const std::vector<double>& freqs,
                          const std::vector<double>& psd,
                          bool constrain_slope_to_one = false);

}  // namespace samurai::signal
