#include "signal/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace samurai::signal {

namespace {

void fft_core(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& value : a) value /= static_cast<double>(n);
  }
}

}  // namespace

void fft(std::vector<std::complex<double>>& data) { fft_core(data, false); }

void ifft(std::vector<std::complex<double>>& data) { fft_core(data, true); }

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<std::complex<double>> rfft(const std::vector<double>& x,
                                       std::size_t padded_size) {
  const std::size_t n = padded_size == 0 ? next_pow2(x.size()) : padded_size;
  if (n < x.size() || (n & (n - 1)) != 0) {
    throw std::invalid_argument("rfft: invalid padded size");
  }
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < x.size(); ++i) data[i] = x[i];
  fft(data);
  return data;
}

}  // namespace samurai::signal
