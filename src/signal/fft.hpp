// Iterative radix-2 complex FFT (self-contained; no external DSP
// dependency). Sufficient for the power-of-two record lengths the PSD and
// autocorrelation estimators use.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace samurai::signal {

/// In-place forward FFT. `data.size()` must be a power of two (>= 1).
void fft(std::vector<std::complex<double>>& data);

/// In-place inverse FFT (includes the 1/N normalisation).
void ifft(std::vector<std::complex<double>>& data);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

/// Forward FFT of a real sequence, zero-padded to `padded_size` (must be a
/// power of two >= x.size(); 0 means next_pow2(x.size())).
std::vector<std::complex<double>> rfft(const std::vector<double>& x,
                                       std::size_t padded_size = 0);

}  // namespace samurai::signal
