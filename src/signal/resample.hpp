// Uniform-grid resampling of the library's waveform types — the bridge
// between event-driven traces (StepTrace / TrapTrajectory output) and the
// FFT-based estimators, which need uniformly sampled records.
#pragma once

#include <cstddef>
#include <vector>

#include "core/trajectory.hpp"
#include "core/waveform.hpp"

namespace samurai::signal {

struct UniformRecord {
  double t0 = 0.0;
  double dt = 0.0;
  std::vector<double> samples;
};

/// Sample a StepTrace on n uniform points over [t0, t1).
UniformRecord resample(const core::StepTrace& trace, double t0, double t1,
                       std::size_t n);

/// Sample a Pwl on n uniform points over [t0, t1).
UniformRecord resample(const core::Pwl& waveform, double t0, double t1,
                       std::size_t n);

/// Sample a trap trajectory as a 0/1 record on n uniform points.
UniformRecord resample(const core::TrapTrajectory& trajectory, std::size_t n);

}  // namespace samurai::signal
