#include "signal/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "signal/fft.hpp"

namespace samurai::signal {

Autocorrelation autocorrelation(const std::vector<double>& samples, double dt,
                                bool subtract_mean, bool unbiased,
                                std::size_t max_lags) {
  const std::size_t n = samples.size();
  if (n < 2) throw std::invalid_argument("autocorrelation: need >= 2 samples");
  if (!(dt > 0.0)) throw std::invalid_argument("autocorrelation: dt <= 0");

  double mean = 0.0;
  if (subtract_mean) {
    for (double v : samples) mean += v;
    mean /= static_cast<double>(n);
  }
  // Zero-pad to 2N to make the circular correlation linear.
  const std::size_t padded = next_pow2(2 * n);
  std::vector<std::complex<double>> data(padded);
  for (std::size_t i = 0; i < n; ++i) data[i] = samples[i] - mean;
  fft(data);
  for (auto& c : data) c = c * std::conj(c);
  ifft(data);

  const std::size_t lags = max_lags == 0 ? n / 2 : std::min(max_lags, n - 1);
  Autocorrelation acf;
  acf.lags.reserve(lags + 1);
  acf.values.reserve(lags + 1);
  for (std::size_t k = 0; k <= lags; ++k) {
    const double norm =
        unbiased ? static_cast<double>(n - k) : static_cast<double>(n);
    acf.lags.push_back(static_cast<double>(k) * dt);
    acf.values.push_back(data[k].real() / norm);
  }
  return acf;
}

Spectrum welch_psd(const std::vector<double>& samples, double dt,
                   std::size_t segment_length, bool subtract_mean) {
  const std::size_t n = samples.size();
  if (n < 8) throw std::invalid_argument("welch_psd: need >= 8 samples");
  if (!(dt > 0.0)) throw std::invalid_argument("welch_psd: dt <= 0");

  std::size_t seg = segment_length;
  if (seg == 0) {
    seg = next_pow2(std::max<std::size_t>(n / 8, 8));
    if (seg > n) seg /= 2;
  }
  if (seg < 8 || seg > n || (seg & (seg - 1)) != 0) {
    throw std::invalid_argument("welch_psd: invalid segment length");
  }

  double mean = 0.0;
  if (subtract_mean) {
    for (double v : samples) mean += v;
    mean /= static_cast<double>(n);
  }

  // Hann window and its power normalisation.
  std::vector<double> window(seg);
  double window_power = 0.0;
  for (std::size_t i = 0; i < seg; ++i) {
    window[i] = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi *
                                      static_cast<double>(i) /
                                      static_cast<double>(seg - 1)));
    window_power += window[i] * window[i];
  }

  const std::size_t hop = seg / 2;
  const std::size_t half = seg / 2;
  std::vector<double> accum(half, 0.0);
  std::size_t segments = 0;
  std::vector<std::complex<double>> buffer(seg);
  for (std::size_t start = 0; start + seg <= n; start += hop) {
    for (std::size_t i = 0; i < seg; ++i) {
      buffer[i] = (samples[start + i] - mean) * window[i];
    }
    fft(buffer);
    for (std::size_t k = 1; k <= half; ++k) {
      const std::size_t idx = (k == half) ? half : k;
      accum[k - 1] += std::norm(buffer[idx]);
    }
    ++segments;
  }
  if (segments == 0) throw std::runtime_error("welch_psd: no full segments");

  const double fs = 1.0 / dt;
  // One-sided: factor 2 for positive frequencies (Nyquist bin strictly
  // should not be doubled; the error there is negligible for our use).
  const double scale = 2.0 / (fs * window_power * static_cast<double>(segments));
  Spectrum spectrum;
  spectrum.frequencies.reserve(half);
  spectrum.density.reserve(half);
  for (std::size_t k = 1; k <= half; ++k) {
    spectrum.frequencies.push_back(static_cast<double>(k) * fs /
                                   static_cast<double>(seg));
    spectrum.density.push_back(accum[k - 1] * scale);
  }
  return spectrum;
}

std::vector<double> psd_from_autocorrelation(const Autocorrelation& acf,
                                             const std::vector<double>& freqs) {
  if (acf.lags.size() < 2) {
    throw std::invalid_argument("psd_from_autocorrelation: too few lags");
  }
  std::vector<double> out;
  out.reserve(freqs.size());
  for (double f : freqs) {
    // S(f) = 2 ∫_0^∞ R(τ) cos(2πfτ) dτ  ≈ trapezoid over available lags,
    // doubled again for the negative-τ half (R is even): total factor 4
    // on the one-sided integral... careful: S_onesided(f) =
    // 4 ∫_0^∞ R(τ) cos(2πfτ) dτ for real R with S defined on f >= 0.
    double integral = 0.0;
    for (std::size_t k = 1; k < acf.lags.size(); ++k) {
      const double h = acf.lags[k] - acf.lags[k - 1];
      const double y0 =
          acf.values[k - 1] * std::cos(2.0 * std::numbers::pi * f * acf.lags[k - 1]);
      const double y1 =
          acf.values[k] * std::cos(2.0 * std::numbers::pi * f * acf.lags[k]);
      integral += 0.5 * (y0 + y1) * h;
    }
    out.push_back(4.0 * integral);
  }
  return out;
}

}  // namespace samurai::signal
