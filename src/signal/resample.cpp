#include "signal/resample.hpp"

#include <stdexcept>

namespace samurai::signal {

namespace {

template <typename Eval>
UniformRecord make_record(double t0, double t1, std::size_t n, Eval&& eval) {
  if (!(t1 > t0) || n < 2) {
    throw std::invalid_argument("resample: bad grid parameters");
  }
  UniformRecord record;
  record.t0 = t0;
  record.dt = (t1 - t0) / static_cast<double>(n);
  record.samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    record.samples.push_back(eval(t0 + record.dt * static_cast<double>(i)));
  }
  return record;
}

}  // namespace

UniformRecord resample(const core::StepTrace& trace, double t0, double t1,
                       std::size_t n) {
  return make_record(t0, t1, n, [&](double t) { return trace.eval(t); });
}

UniformRecord resample(const core::Pwl& waveform, double t0, double t1,
                       std::size_t n) {
  return make_record(t0, t1, n, [&](double t) { return waveform.eval(t); });
}

UniformRecord resample(const core::TrapTrajectory& trajectory, std::size_t n) {
  return make_record(trajectory.t0(), trajectory.tf(), n, [&](double t) {
    return trajectory.state_at(t) == physics::TrapState::kFilled ? 1.0 : 0.0;
  });
}

}  // namespace samurai::signal
