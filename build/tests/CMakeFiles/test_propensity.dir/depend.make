# Empty dependencies file for test_propensity.
# This may be replaced when dependencies are built.
