file(REMOVE_RECURSE
  "CMakeFiles/test_propensity.dir/test_propensity.cpp.o"
  "CMakeFiles/test_propensity.dir/test_propensity.cpp.o.d"
  "test_propensity"
  "test_propensity.pdb"
  "test_propensity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_propensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
