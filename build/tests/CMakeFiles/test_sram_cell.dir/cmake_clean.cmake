file(REMOVE_RECURSE
  "CMakeFiles/test_sram_cell.dir/test_sram_cell.cpp.o"
  "CMakeFiles/test_sram_cell.dir/test_sram_cell.cpp.o.d"
  "test_sram_cell"
  "test_sram_cell.pdb"
  "test_sram_cell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sram_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
