# Empty compiler generated dependencies file for test_sram_cell.
# This may be replaced when dependencies are built.
