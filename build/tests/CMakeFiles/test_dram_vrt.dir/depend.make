# Empty dependencies file for test_dram_vrt.
# This may be replaced when dependencies are built.
