file(REMOVE_RECURSE
  "CMakeFiles/test_dram_vrt.dir/test_dram_vrt.cpp.o"
  "CMakeFiles/test_dram_vrt.dir/test_dram_vrt.cpp.o.d"
  "test_dram_vrt"
  "test_dram_vrt.pdb"
  "test_dram_vrt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dram_vrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
