file(REMOVE_RECURSE
  "CMakeFiles/test_mos_device.dir/test_mos_device.cpp.o"
  "CMakeFiles/test_mos_device.dir/test_mos_device.cpp.o.d"
  "test_mos_device"
  "test_mos_device.pdb"
  "test_mos_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mos_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
