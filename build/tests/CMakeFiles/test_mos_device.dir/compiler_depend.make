# Empty compiler generated dependencies file for test_mos_device.
# This may be replaced when dependencies are built.
