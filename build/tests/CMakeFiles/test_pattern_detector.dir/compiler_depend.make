# Empty compiler generated dependencies file for test_pattern_detector.
# This may be replaced when dependencies are built.
