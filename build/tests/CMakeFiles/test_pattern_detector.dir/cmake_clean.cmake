file(REMOVE_RECURSE
  "CMakeFiles/test_pattern_detector.dir/test_pattern_detector.cpp.o"
  "CMakeFiles/test_pattern_detector.dir/test_pattern_detector.cpp.o.d"
  "test_pattern_detector"
  "test_pattern_detector.pdb"
  "test_pattern_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pattern_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
