file(REMOVE_RECURSE
  "CMakeFiles/test_column.dir/test_column.cpp.o"
  "CMakeFiles/test_column.dir/test_column.cpp.o.d"
  "test_column"
  "test_column.pdb"
  "test_column[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_column.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
