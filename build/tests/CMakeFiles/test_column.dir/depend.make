# Empty dependencies file for test_column.
# This may be replaced when dependencies are built.
