file(REMOVE_RECURSE
  "CMakeFiles/test_uniformisation.dir/test_uniformisation.cpp.o"
  "CMakeFiles/test_uniformisation.dir/test_uniformisation.cpp.o.d"
  "test_uniformisation"
  "test_uniformisation.pdb"
  "test_uniformisation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uniformisation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
