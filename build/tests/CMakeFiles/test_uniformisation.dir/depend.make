# Empty dependencies file for test_uniformisation.
# This may be replaced when dependencies are built.
