file(REMOVE_RECURSE
  "CMakeFiles/test_trap_profile_io.dir/test_trap_profile_io.cpp.o"
  "CMakeFiles/test_trap_profile_io.dir/test_trap_profile_io.cpp.o.d"
  "test_trap_profile_io"
  "test_trap_profile_io.pdb"
  "test_trap_profile_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trap_profile_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
