file(REMOVE_RECURSE
  "CMakeFiles/test_methodology.dir/test_methodology.cpp.o"
  "CMakeFiles/test_methodology.dir/test_methodology.cpp.o.d"
  "test_methodology"
  "test_methodology.pdb"
  "test_methodology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_methodology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
