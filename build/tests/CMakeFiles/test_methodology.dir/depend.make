# Empty dependencies file for test_methodology.
# This may be replaced when dependencies are built.
