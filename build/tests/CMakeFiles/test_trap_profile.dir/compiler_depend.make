# Empty compiler generated dependencies file for test_trap_profile.
# This may be replaced when dependencies are built.
