file(REMOVE_RECURSE
  "CMakeFiles/test_trap_profile.dir/test_trap_profile.cpp.o"
  "CMakeFiles/test_trap_profile.dir/test_trap_profile.cpp.o.d"
  "test_trap_profile"
  "test_trap_profile.pdb"
  "test_trap_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trap_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
