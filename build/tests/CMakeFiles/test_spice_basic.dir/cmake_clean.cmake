file(REMOVE_RECURSE
  "CMakeFiles/test_spice_basic.dir/test_spice_basic.cpp.o"
  "CMakeFiles/test_spice_basic.dir/test_spice_basic.cpp.o.d"
  "test_spice_basic"
  "test_spice_basic.pdb"
  "test_spice_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
