file(REMOVE_RECURSE
  "CMakeFiles/test_methodology_extras.dir/test_methodology_extras.cpp.o"
  "CMakeFiles/test_methodology_extras.dir/test_methodology_extras.cpp.o.d"
  "test_methodology_extras"
  "test_methodology_extras.pdb"
  "test_methodology_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_methodology_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
