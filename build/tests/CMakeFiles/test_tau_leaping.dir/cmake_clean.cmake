file(REMOVE_RECURSE
  "CMakeFiles/test_tau_leaping.dir/test_tau_leaping.cpp.o"
  "CMakeFiles/test_tau_leaping.dir/test_tau_leaping.cpp.o.d"
  "test_tau_leaping"
  "test_tau_leaping.pdb"
  "test_tau_leaping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tau_leaping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
