# Empty dependencies file for test_surface_potential.
# This may be replaced when dependencies are built.
