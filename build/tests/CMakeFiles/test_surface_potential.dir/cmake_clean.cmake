file(REMOVE_RECURSE
  "CMakeFiles/test_surface_potential.dir/test_surface_potential.cpp.o"
  "CMakeFiles/test_surface_potential.dir/test_surface_potential.cpp.o.d"
  "test_surface_potential"
  "test_surface_potential.pdb"
  "test_surface_potential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_surface_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
