file(REMOVE_RECURSE
  "CMakeFiles/test_coupled_array.dir/test_coupled_array.cpp.o"
  "CMakeFiles/test_coupled_array.dir/test_coupled_array.cpp.o.d"
  "test_coupled_array"
  "test_coupled_array.pdb"
  "test_coupled_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coupled_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
