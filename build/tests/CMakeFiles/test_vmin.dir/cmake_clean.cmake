file(REMOVE_RECURSE
  "CMakeFiles/test_vmin.dir/test_vmin.cpp.o"
  "CMakeFiles/test_vmin.dir/test_vmin.cpp.o.d"
  "test_vmin"
  "test_vmin.pdb"
  "test_vmin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
