# Empty compiler generated dependencies file for test_vmin.
# This may be replaced when dependencies are built.
