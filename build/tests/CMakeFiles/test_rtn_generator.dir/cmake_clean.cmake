file(REMOVE_RECURSE
  "CMakeFiles/test_rtn_generator.dir/test_rtn_generator.cpp.o"
  "CMakeFiles/test_rtn_generator.dir/test_rtn_generator.cpp.o.d"
  "test_rtn_generator"
  "test_rtn_generator.pdb"
  "test_rtn_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtn_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
