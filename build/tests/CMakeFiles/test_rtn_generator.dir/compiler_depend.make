# Empty compiler generated dependencies file for test_rtn_generator.
# This may be replaced when dependencies are built.
