# Empty dependencies file for test_srh_model.
# This may be replaced when dependencies are built.
