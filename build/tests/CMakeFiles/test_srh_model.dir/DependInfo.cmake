
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_srh_model.cpp" "tests/CMakeFiles/test_srh_model.dir/test_srh_model.cpp.o" "gcc" "tests/CMakeFiles/test_srh_model.dir/test_srh_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sram/CMakeFiles/samurai_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/osc/CMakeFiles/samurai_osc.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/samurai_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/samurai_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/samurai_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/samurai_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/samurai_core.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/samurai_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/samurai_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
