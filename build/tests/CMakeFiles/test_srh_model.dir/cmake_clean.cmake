file(REMOVE_RECURSE
  "CMakeFiles/test_srh_model.dir/test_srh_model.cpp.o"
  "CMakeFiles/test_srh_model.dir/test_srh_model.cpp.o.d"
  "test_srh_model"
  "test_srh_model.pdb"
  "test_srh_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srh_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
