# Empty compiler generated dependencies file for samurai_osc.
# This may be replaced when dependencies are built.
