file(REMOVE_RECURSE
  "libsamurai_osc.a"
)
