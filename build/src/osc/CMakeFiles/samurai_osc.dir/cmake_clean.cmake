file(REMOVE_RECURSE
  "CMakeFiles/samurai_osc.dir/ring.cpp.o"
  "CMakeFiles/samurai_osc.dir/ring.cpp.o.d"
  "libsamurai_osc.a"
  "libsamurai_osc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samurai_osc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
