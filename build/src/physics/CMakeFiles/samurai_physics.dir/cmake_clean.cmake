file(REMOVE_RECURSE
  "CMakeFiles/samurai_physics.dir/mos_device.cpp.o"
  "CMakeFiles/samurai_physics.dir/mos_device.cpp.o.d"
  "CMakeFiles/samurai_physics.dir/srh_model.cpp.o"
  "CMakeFiles/samurai_physics.dir/srh_model.cpp.o.d"
  "CMakeFiles/samurai_physics.dir/surface_potential.cpp.o"
  "CMakeFiles/samurai_physics.dir/surface_potential.cpp.o.d"
  "CMakeFiles/samurai_physics.dir/technology.cpp.o"
  "CMakeFiles/samurai_physics.dir/technology.cpp.o.d"
  "CMakeFiles/samurai_physics.dir/trap_profile.cpp.o"
  "CMakeFiles/samurai_physics.dir/trap_profile.cpp.o.d"
  "CMakeFiles/samurai_physics.dir/trap_profile_io.cpp.o"
  "CMakeFiles/samurai_physics.dir/trap_profile_io.cpp.o.d"
  "libsamurai_physics.a"
  "libsamurai_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samurai_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
