# Empty compiler generated dependencies file for samurai_physics.
# This may be replaced when dependencies are built.
