
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/physics/mos_device.cpp" "src/physics/CMakeFiles/samurai_physics.dir/mos_device.cpp.o" "gcc" "src/physics/CMakeFiles/samurai_physics.dir/mos_device.cpp.o.d"
  "/root/repo/src/physics/srh_model.cpp" "src/physics/CMakeFiles/samurai_physics.dir/srh_model.cpp.o" "gcc" "src/physics/CMakeFiles/samurai_physics.dir/srh_model.cpp.o.d"
  "/root/repo/src/physics/surface_potential.cpp" "src/physics/CMakeFiles/samurai_physics.dir/surface_potential.cpp.o" "gcc" "src/physics/CMakeFiles/samurai_physics.dir/surface_potential.cpp.o.d"
  "/root/repo/src/physics/technology.cpp" "src/physics/CMakeFiles/samurai_physics.dir/technology.cpp.o" "gcc" "src/physics/CMakeFiles/samurai_physics.dir/technology.cpp.o.d"
  "/root/repo/src/physics/trap_profile.cpp" "src/physics/CMakeFiles/samurai_physics.dir/trap_profile.cpp.o" "gcc" "src/physics/CMakeFiles/samurai_physics.dir/trap_profile.cpp.o.d"
  "/root/repo/src/physics/trap_profile_io.cpp" "src/physics/CMakeFiles/samurai_physics.dir/trap_profile_io.cpp.o" "gcc" "src/physics/CMakeFiles/samurai_physics.dir/trap_profile_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/samurai_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
