file(REMOVE_RECURSE
  "libsamurai_physics.a"
)
