# Empty dependencies file for samurai_sram.
# This may be replaced when dependencies are built.
