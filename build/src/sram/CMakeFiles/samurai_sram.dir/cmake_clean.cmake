file(REMOVE_RECURSE
  "CMakeFiles/samurai_sram.dir/array.cpp.o"
  "CMakeFiles/samurai_sram.dir/array.cpp.o.d"
  "CMakeFiles/samurai_sram.dir/cell.cpp.o"
  "CMakeFiles/samurai_sram.dir/cell.cpp.o.d"
  "CMakeFiles/samurai_sram.dir/column.cpp.o"
  "CMakeFiles/samurai_sram.dir/column.cpp.o.d"
  "CMakeFiles/samurai_sram.dir/coupled.cpp.o"
  "CMakeFiles/samurai_sram.dir/coupled.cpp.o.d"
  "CMakeFiles/samurai_sram.dir/detector.cpp.o"
  "CMakeFiles/samurai_sram.dir/detector.cpp.o.d"
  "CMakeFiles/samurai_sram.dir/importance.cpp.o"
  "CMakeFiles/samurai_sram.dir/importance.cpp.o.d"
  "CMakeFiles/samurai_sram.dir/methodology.cpp.o"
  "CMakeFiles/samurai_sram.dir/methodology.cpp.o.d"
  "CMakeFiles/samurai_sram.dir/pattern.cpp.o"
  "CMakeFiles/samurai_sram.dir/pattern.cpp.o.d"
  "CMakeFiles/samurai_sram.dir/snm.cpp.o"
  "CMakeFiles/samurai_sram.dir/snm.cpp.o.d"
  "CMakeFiles/samurai_sram.dir/vmin.cpp.o"
  "CMakeFiles/samurai_sram.dir/vmin.cpp.o.d"
  "libsamurai_sram.a"
  "libsamurai_sram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samurai_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
