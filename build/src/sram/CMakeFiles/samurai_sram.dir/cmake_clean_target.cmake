file(REMOVE_RECURSE
  "libsamurai_sram.a"
)
