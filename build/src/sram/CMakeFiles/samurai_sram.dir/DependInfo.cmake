
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sram/array.cpp" "src/sram/CMakeFiles/samurai_sram.dir/array.cpp.o" "gcc" "src/sram/CMakeFiles/samurai_sram.dir/array.cpp.o.d"
  "/root/repo/src/sram/cell.cpp" "src/sram/CMakeFiles/samurai_sram.dir/cell.cpp.o" "gcc" "src/sram/CMakeFiles/samurai_sram.dir/cell.cpp.o.d"
  "/root/repo/src/sram/column.cpp" "src/sram/CMakeFiles/samurai_sram.dir/column.cpp.o" "gcc" "src/sram/CMakeFiles/samurai_sram.dir/column.cpp.o.d"
  "/root/repo/src/sram/coupled.cpp" "src/sram/CMakeFiles/samurai_sram.dir/coupled.cpp.o" "gcc" "src/sram/CMakeFiles/samurai_sram.dir/coupled.cpp.o.d"
  "/root/repo/src/sram/detector.cpp" "src/sram/CMakeFiles/samurai_sram.dir/detector.cpp.o" "gcc" "src/sram/CMakeFiles/samurai_sram.dir/detector.cpp.o.d"
  "/root/repo/src/sram/importance.cpp" "src/sram/CMakeFiles/samurai_sram.dir/importance.cpp.o" "gcc" "src/sram/CMakeFiles/samurai_sram.dir/importance.cpp.o.d"
  "/root/repo/src/sram/methodology.cpp" "src/sram/CMakeFiles/samurai_sram.dir/methodology.cpp.o" "gcc" "src/sram/CMakeFiles/samurai_sram.dir/methodology.cpp.o.d"
  "/root/repo/src/sram/pattern.cpp" "src/sram/CMakeFiles/samurai_sram.dir/pattern.cpp.o" "gcc" "src/sram/CMakeFiles/samurai_sram.dir/pattern.cpp.o.d"
  "/root/repo/src/sram/snm.cpp" "src/sram/CMakeFiles/samurai_sram.dir/snm.cpp.o" "gcc" "src/sram/CMakeFiles/samurai_sram.dir/snm.cpp.o.d"
  "/root/repo/src/sram/vmin.cpp" "src/sram/CMakeFiles/samurai_sram.dir/vmin.cpp.o" "gcc" "src/sram/CMakeFiles/samurai_sram.dir/vmin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/samurai_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/samurai_core.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/samurai_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/samurai_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
