file(REMOVE_RECURSE
  "libsamurai_dram.a"
)
