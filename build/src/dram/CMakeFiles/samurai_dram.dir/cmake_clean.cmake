file(REMOVE_RECURSE
  "CMakeFiles/samurai_dram.dir/vrt.cpp.o"
  "CMakeFiles/samurai_dram.dir/vrt.cpp.o.d"
  "libsamurai_dram.a"
  "libsamurai_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samurai_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
