# Empty compiler generated dependencies file for samurai_dram.
# This may be replaced when dependencies are built.
