# Empty compiler generated dependencies file for samurai_core.
# This may be replaced when dependencies are built.
