
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/propensity.cpp" "src/core/CMakeFiles/samurai_core.dir/propensity.cpp.o" "gcc" "src/core/CMakeFiles/samurai_core.dir/propensity.cpp.o.d"
  "/root/repo/src/core/rtn_generator.cpp" "src/core/CMakeFiles/samurai_core.dir/rtn_generator.cpp.o" "gcc" "src/core/CMakeFiles/samurai_core.dir/rtn_generator.cpp.o.d"
  "/root/repo/src/core/trajectory.cpp" "src/core/CMakeFiles/samurai_core.dir/trajectory.cpp.o" "gcc" "src/core/CMakeFiles/samurai_core.dir/trajectory.cpp.o.d"
  "/root/repo/src/core/uniformisation.cpp" "src/core/CMakeFiles/samurai_core.dir/uniformisation.cpp.o" "gcc" "src/core/CMakeFiles/samurai_core.dir/uniformisation.cpp.o.d"
  "/root/repo/src/core/waveform.cpp" "src/core/CMakeFiles/samurai_core.dir/waveform.cpp.o" "gcc" "src/core/CMakeFiles/samurai_core.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/physics/CMakeFiles/samurai_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/samurai_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
