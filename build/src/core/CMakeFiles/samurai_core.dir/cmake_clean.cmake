file(REMOVE_RECURSE
  "CMakeFiles/samurai_core.dir/propensity.cpp.o"
  "CMakeFiles/samurai_core.dir/propensity.cpp.o.d"
  "CMakeFiles/samurai_core.dir/rtn_generator.cpp.o"
  "CMakeFiles/samurai_core.dir/rtn_generator.cpp.o.d"
  "CMakeFiles/samurai_core.dir/trajectory.cpp.o"
  "CMakeFiles/samurai_core.dir/trajectory.cpp.o.d"
  "CMakeFiles/samurai_core.dir/uniformisation.cpp.o"
  "CMakeFiles/samurai_core.dir/uniformisation.cpp.o.d"
  "CMakeFiles/samurai_core.dir/waveform.cpp.o"
  "CMakeFiles/samurai_core.dir/waveform.cpp.o.d"
  "libsamurai_core.a"
  "libsamurai_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samurai_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
