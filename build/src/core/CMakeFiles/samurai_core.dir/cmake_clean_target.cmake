file(REMOVE_RECURSE
  "libsamurai_core.a"
)
