file(REMOVE_RECURSE
  "libsamurai_spice.a"
)
