# Empty compiler generated dependencies file for samurai_spice.
# This may be replaced when dependencies are built.
