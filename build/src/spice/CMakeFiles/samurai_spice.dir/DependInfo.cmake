
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/analysis.cpp" "src/spice/CMakeFiles/samurai_spice.dir/analysis.cpp.o" "gcc" "src/spice/CMakeFiles/samurai_spice.dir/analysis.cpp.o.d"
  "/root/repo/src/spice/circuit.cpp" "src/spice/CMakeFiles/samurai_spice.dir/circuit.cpp.o" "gcc" "src/spice/CMakeFiles/samurai_spice.dir/circuit.cpp.o.d"
  "/root/repo/src/spice/devices.cpp" "src/spice/CMakeFiles/samurai_spice.dir/devices.cpp.o" "gcc" "src/spice/CMakeFiles/samurai_spice.dir/devices.cpp.o.d"
  "/root/repo/src/spice/matrix.cpp" "src/spice/CMakeFiles/samurai_spice.dir/matrix.cpp.o" "gcc" "src/spice/CMakeFiles/samurai_spice.dir/matrix.cpp.o.d"
  "/root/repo/src/spice/parser.cpp" "src/spice/CMakeFiles/samurai_spice.dir/parser.cpp.o" "gcc" "src/spice/CMakeFiles/samurai_spice.dir/parser.cpp.o.d"
  "/root/repo/src/spice/rtn_integration.cpp" "src/spice/CMakeFiles/samurai_spice.dir/rtn_integration.cpp.o" "gcc" "src/spice/CMakeFiles/samurai_spice.dir/rtn_integration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/samurai_core.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/samurai_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/samurai_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
