file(REMOVE_RECURSE
  "CMakeFiles/samurai_spice.dir/analysis.cpp.o"
  "CMakeFiles/samurai_spice.dir/analysis.cpp.o.d"
  "CMakeFiles/samurai_spice.dir/circuit.cpp.o"
  "CMakeFiles/samurai_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/samurai_spice.dir/devices.cpp.o"
  "CMakeFiles/samurai_spice.dir/devices.cpp.o.d"
  "CMakeFiles/samurai_spice.dir/matrix.cpp.o"
  "CMakeFiles/samurai_spice.dir/matrix.cpp.o.d"
  "CMakeFiles/samurai_spice.dir/parser.cpp.o"
  "CMakeFiles/samurai_spice.dir/parser.cpp.o.d"
  "CMakeFiles/samurai_spice.dir/rtn_integration.cpp.o"
  "CMakeFiles/samurai_spice.dir/rtn_integration.cpp.o.d"
  "libsamurai_spice.a"
  "libsamurai_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samurai_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
