file(REMOVE_RECURSE
  "libsamurai_baseline.a"
)
