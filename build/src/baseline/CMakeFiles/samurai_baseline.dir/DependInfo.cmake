
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/gillespie.cpp" "src/baseline/CMakeFiles/samurai_baseline.dir/gillespie.cpp.o" "gcc" "src/baseline/CMakeFiles/samurai_baseline.dir/gillespie.cpp.o.d"
  "/root/repo/src/baseline/tau_leaping.cpp" "src/baseline/CMakeFiles/samurai_baseline.dir/tau_leaping.cpp.o" "gcc" "src/baseline/CMakeFiles/samurai_baseline.dir/tau_leaping.cpp.o.d"
  "/root/repo/src/baseline/ye_two_stage.cpp" "src/baseline/CMakeFiles/samurai_baseline.dir/ye_two_stage.cpp.o" "gcc" "src/baseline/CMakeFiles/samurai_baseline.dir/ye_two_stage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/samurai_core.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/samurai_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/samurai_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
