# Empty compiler generated dependencies file for samurai_baseline.
# This may be replaced when dependencies are built.
