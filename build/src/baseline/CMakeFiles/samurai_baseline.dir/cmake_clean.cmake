file(REMOVE_RECURSE
  "CMakeFiles/samurai_baseline.dir/gillespie.cpp.o"
  "CMakeFiles/samurai_baseline.dir/gillespie.cpp.o.d"
  "CMakeFiles/samurai_baseline.dir/tau_leaping.cpp.o"
  "CMakeFiles/samurai_baseline.dir/tau_leaping.cpp.o.d"
  "CMakeFiles/samurai_baseline.dir/ye_two_stage.cpp.o"
  "CMakeFiles/samurai_baseline.dir/ye_two_stage.cpp.o.d"
  "libsamurai_baseline.a"
  "libsamurai_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samurai_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
