# Empty compiler generated dependencies file for samurai_signal.
# This may be replaced when dependencies are built.
