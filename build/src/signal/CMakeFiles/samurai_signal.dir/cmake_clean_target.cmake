file(REMOVE_RECURSE
  "libsamurai_signal.a"
)
