file(REMOVE_RECURSE
  "CMakeFiles/samurai_signal.dir/analytic.cpp.o"
  "CMakeFiles/samurai_signal.dir/analytic.cpp.o.d"
  "CMakeFiles/samurai_signal.dir/fft.cpp.o"
  "CMakeFiles/samurai_signal.dir/fft.cpp.o.d"
  "CMakeFiles/samurai_signal.dir/resample.cpp.o"
  "CMakeFiles/samurai_signal.dir/resample.cpp.o.d"
  "CMakeFiles/samurai_signal.dir/spectral.cpp.o"
  "CMakeFiles/samurai_signal.dir/spectral.cpp.o.d"
  "libsamurai_signal.a"
  "libsamurai_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samurai_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
