file(REMOVE_RECURSE
  "CMakeFiles/samurai_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/samurai_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/samurai_util.dir/cli.cpp.o"
  "CMakeFiles/samurai_util.dir/cli.cpp.o.d"
  "CMakeFiles/samurai_util.dir/grid.cpp.o"
  "CMakeFiles/samurai_util.dir/grid.cpp.o.d"
  "CMakeFiles/samurai_util.dir/table.cpp.o"
  "CMakeFiles/samurai_util.dir/table.cpp.o.d"
  "libsamurai_util.a"
  "libsamurai_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samurai_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
