# Empty dependencies file for samurai_util.
# This may be replaced when dependencies are built.
