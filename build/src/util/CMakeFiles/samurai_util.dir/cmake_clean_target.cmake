file(REMOVE_RECURSE
  "libsamurai_util.a"
)
