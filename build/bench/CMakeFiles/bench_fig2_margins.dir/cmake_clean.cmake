file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_margins.dir/bench_fig2_margins.cpp.o"
  "CMakeFiles/bench_fig2_margins.dir/bench_fig2_margins.cpp.o.d"
  "bench_fig2_margins"
  "bench_fig2_margins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_margins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
