# Empty dependencies file for bench_fig2_margins.
# This may be replaced when dependencies are built.
