file(REMOVE_RECURSE
  "CMakeFiles/bench_snm.dir/bench_snm.cpp.o"
  "CMakeFiles/bench_snm.dir/bench_snm.cpp.o.d"
  "bench_snm"
  "bench_snm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_snm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
