# Empty dependencies file for bench_snm.
# This may be replaced when dependencies are built.
