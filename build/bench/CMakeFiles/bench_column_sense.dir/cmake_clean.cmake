file(REMOVE_RECURSE
  "CMakeFiles/bench_column_sense.dir/bench_column_sense.cpp.o"
  "CMakeFiles/bench_column_sense.dir/bench_column_sense.cpp.o.d"
  "bench_column_sense"
  "bench_column_sense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_column_sense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
