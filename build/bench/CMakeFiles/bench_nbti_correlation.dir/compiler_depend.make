# Empty compiler generated dependencies file for bench_nbti_correlation.
# This may be replaced when dependencies are built.
