file(REMOVE_RECURSE
  "CMakeFiles/bench_nbti_correlation.dir/bench_nbti_correlation.cpp.o"
  "CMakeFiles/bench_nbti_correlation.dir/bench_nbti_correlation.cpp.o.d"
  "bench_nbti_correlation"
  "bench_nbti_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nbti_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
