file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_array.dir/bench_ext_array.cpp.o"
  "CMakeFiles/bench_ext_array.dir/bench_ext_array.cpp.o.d"
  "bench_ext_array"
  "bench_ext_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
