# Empty compiler generated dependencies file for bench_ext_array.
# This may be replaced when dependencies are built.
