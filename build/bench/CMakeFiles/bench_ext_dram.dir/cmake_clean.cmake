file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dram.dir/bench_ext_dram.cpp.o"
  "CMakeFiles/bench_ext_dram.dir/bench_ext_dram.cpp.o.d"
  "bench_ext_dram"
  "bench_ext_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
