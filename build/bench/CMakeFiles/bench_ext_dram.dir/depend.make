# Empty dependencies file for bench_ext_dram.
# This may be replaced when dependencies are built.
