# Empty dependencies file for bench_ext_coupled.
# This may be replaced when dependencies are built.
