file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_coupled.dir/bench_ext_coupled.cpp.o"
  "CMakeFiles/bench_ext_coupled.dir/bench_ext_coupled.cpp.o.d"
  "bench_ext_coupled"
  "bench_ext_coupled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_coupled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
