# Empty compiler generated dependencies file for bench_ablation_uniformisation.
# This may be replaced when dependencies are built.
