file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_uniformisation.dir/bench_ablation_uniformisation.cpp.o"
  "CMakeFiles/bench_ablation_uniformisation.dir/bench_ablation_uniformisation.cpp.o.d"
  "bench_ablation_uniformisation"
  "bench_ablation_uniformisation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_uniformisation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
