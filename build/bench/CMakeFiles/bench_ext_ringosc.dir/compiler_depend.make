# Empty compiler generated dependencies file for bench_ext_ringosc.
# This may be replaced when dependencies are built.
