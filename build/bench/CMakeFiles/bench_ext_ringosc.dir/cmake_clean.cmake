file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ringosc.dir/bench_ext_ringosc.cpp.o"
  "CMakeFiles/bench_ext_ringosc.dir/bench_ext_ringosc.cpp.o.d"
  "bench_ext_ringosc"
  "bench_ext_ringosc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ringosc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
