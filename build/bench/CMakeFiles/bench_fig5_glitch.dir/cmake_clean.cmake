file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_glitch.dir/bench_fig5_glitch.cpp.o"
  "CMakeFiles/bench_fig5_glitch.dir/bench_fig5_glitch.cpp.o.d"
  "bench_fig5_glitch"
  "bench_fig5_glitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_glitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
