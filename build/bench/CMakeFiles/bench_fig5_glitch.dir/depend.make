# Empty dependencies file for bench_fig5_glitch.
# This may be replaced when dependencies are built.
