file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_methodology.dir/bench_fig8_methodology.cpp.o"
  "CMakeFiles/bench_fig8_methodology.dir/bench_fig8_methodology.cpp.o.d"
  "bench_fig8_methodology"
  "bench_fig8_methodology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_methodology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
