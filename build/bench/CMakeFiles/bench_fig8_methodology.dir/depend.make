# Empty dependencies file for bench_fig8_methodology.
# This may be replaced when dependencies are built.
