# Empty dependencies file for bench_vmin.
# This may be replaced when dependencies are built.
