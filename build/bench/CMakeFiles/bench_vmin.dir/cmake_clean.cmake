file(REMOVE_RECURSE
  "CMakeFiles/bench_vmin.dir/bench_vmin.cpp.o"
  "CMakeFiles/bench_vmin.dir/bench_vmin.cpp.o.d"
  "bench_vmin"
  "bench_vmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
