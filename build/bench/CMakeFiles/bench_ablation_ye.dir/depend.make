# Empty dependencies file for bench_ablation_ye.
# This may be replaced when dependencies are built.
