file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ye.dir/bench_ablation_ye.cpp.o"
  "CMakeFiles/bench_ablation_ye.dir/bench_ablation_ye.cpp.o.d"
  "bench_ablation_ye"
  "bench_ablation_ye.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ye.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
