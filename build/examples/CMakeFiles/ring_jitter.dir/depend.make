# Empty dependencies file for ring_jitter.
# This may be replaced when dependencies are built.
