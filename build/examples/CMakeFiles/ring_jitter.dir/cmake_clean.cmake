file(REMOVE_RECURSE
  "CMakeFiles/ring_jitter.dir/ring_jitter.cpp.o"
  "CMakeFiles/ring_jitter.dir/ring_jitter.cpp.o.d"
  "ring_jitter"
  "ring_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
