# Empty compiler generated dependencies file for write_error_analysis.
# This may be replaced when dependencies are built.
