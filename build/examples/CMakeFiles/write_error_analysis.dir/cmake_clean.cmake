file(REMOVE_RECURSE
  "CMakeFiles/write_error_analysis.dir/write_error_analysis.cpp.o"
  "CMakeFiles/write_error_analysis.dir/write_error_analysis.cpp.o.d"
  "write_error_analysis"
  "write_error_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_error_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
