# Empty dependencies file for dram_retention.
# This may be replaced when dependencies are built.
