file(REMOVE_RECURSE
  "CMakeFiles/dram_retention.dir/dram_retention.cpp.o"
  "CMakeFiles/dram_retention.dir/dram_retention.cpp.o.d"
  "dram_retention"
  "dram_retention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
