# Empty compiler generated dependencies file for array_yield.
# This may be replaced when dependencies are built.
