file(REMOVE_RECURSE
  "CMakeFiles/array_yield.dir/array_yield.cpp.o"
  "CMakeFiles/array_yield.dir/array_yield.cpp.o.d"
  "array_yield"
  "array_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/array_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
