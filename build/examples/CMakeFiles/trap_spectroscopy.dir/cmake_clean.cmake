file(REMOVE_RECURSE
  "CMakeFiles/trap_spectroscopy.dir/trap_spectroscopy.cpp.o"
  "CMakeFiles/trap_spectroscopy.dir/trap_spectroscopy.cpp.o.d"
  "trap_spectroscopy"
  "trap_spectroscopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trap_spectroscopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
