# Empty dependencies file for trap_spectroscopy.
# This may be replaced when dependencies are built.
